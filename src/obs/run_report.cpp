#include "obs/run_report.h"

#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace dtio::obs {
namespace {

constexpr double kNsPerUs = 1000.0;

void write_io_stats(JsonWriter& w, const IoStats& s) {
  w.begin_object();
  w.kv("desired_bytes", s.desired_bytes);
  w.kv("accessed_bytes", s.accessed_bytes);
  w.kv("io_ops", s.io_ops);
  w.kv("resent_bytes", s.resent_bytes);
  w.kv("request_bytes", s.request_bytes);
  w.kv("regions_client", s.regions_client);
  w.kv("regions_server", s.regions_server);
  w.kv("requests_sent", s.requests_sent);
  w.end_object();
}

void write_latency(JsonWriter& w, const LatencySummary& l) {
  w.begin_object();
  w.kv("count", l.count);
  w.kv("mean_us", l.mean_us);
  w.kv("p50_us", l.p50_us);
  w.kv("p90_us", l.p90_us);
  w.kv("p99_us", l.p99_us);
  w.kv("p999_us", l.p999_us);
  w.kv("max_us", l.max_us);
  w.end_object();
}

void write_phase_array(JsonWriter& w,
                       const std::array<double, kPhaseCount>& ns) {
  w.begin_object();
  for (int p = 1; p < kPhaseCount; ++p) {
    const double v = ns[static_cast<std::size_t>(p)];
    if (v > 0) w.kv(phase_name(static_cast<Phase>(p)), v);
  }
  w.end_object();
}

void write_phase_report(JsonWriter& w, const PhaseReport& r) {
  w.begin_object();
  w.kv("ops", r.ops);
  w.kv("mean_ns", r.mean_ns);
  w.kv("mean_attributed_ns", r.mean_attributed_ns);
  w.kv("mean_coverage", r.mean_coverage);
  w.key("mean_phase_ns");
  write_phase_array(w, r.mean_phase_ns);
  w.key("quantiles").begin_array();
  for (const PhaseQuantile& q : r.quantiles) {
    w.begin_object();
    w.kv("quantile", q.quantile);
    w.kv("latency_ns", q.latency_ns);
    w.kv("attributed_ns", q.attributed_ns);
    w.kv("coverage", q.coverage);
    w.kv("dominant", phase_name(q.dominant));
    w.key("phase_ns");
    write_phase_array(w, q.phase_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

LatencySummary LatencySummary::from(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.mean_us = h.mean() / kNsPerUs;
  s.p50_us = h.percentile(50) / kNsPerUs;
  s.p90_us = h.percentile(90) / kNsPerUs;
  s.p99_us = h.percentile(99) / kNsPerUs;
  s.p999_us = h.percentile(99.9) / kNsPerUs;
  s.max_us = static_cast<double>(h.max()) / kNsPerUs;
  return s;
}

void RunReport::add_timeline(const Timeline& tl) {
  for (const auto& series : tl.all()) {
    TimelineSeriesReport r;
    r.name = series->name();
    r.node = series->node();
    r.total = series->total();
    r.dropped = series->dropped();
    r.min = series->min();
    r.max = series->max();
    r.mean = series->mean();
    r.peak_time = series->peak_time();
    r.points = series->points();
    timeline.push_back(std::move(r));
  }
}

void RunReport::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("schema", "dtio-bench-report-v2");
  w.kv("schema_version", kReportSchemaVersion);
  w.kv("bench", std::string_view(bench));
  w.key("params").begin_object();
  for (const auto& [key, value] : params) w.kv(key, value);
  w.end_object();
  w.key("methods").begin_array();
  for (const MethodReport& m : methods) {
    w.begin_object();
    w.kv("method", std::string_view(m.method));
    w.kv("supported", m.supported);
    w.kv("sim_seconds", m.sim_seconds);
    w.kv("bandwidth_mb_s", m.bandwidth_mb_s);
    w.kv("events", m.events);
    w.key("io_stats");
    write_io_stats(w, m.per_client);
    w.key("latency_us");
    write_latency(w, m.latency);
    w.key("spans").begin_object();
    w.kv("recorded", m.spans_recorded);
    w.kv("dropped", m.spans_dropped);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("scalars").begin_object();
  for (const auto& [key, value] : scalars) w.kv(key, value);
  w.end_object();
  if (!timeline.empty()) {
    w.key("timeline").begin_array();
    for (const TimelineSeriesReport& s : timeline) {
      w.begin_object();
      w.kv("name", std::string_view(s.name));
      w.kv("node", s.node);
      w.kv("total", s.total);
      w.kv("dropped", s.dropped);
      w.kv("min", s.min);
      w.kv("max", s.max);
      w.kv("mean", s.mean);
      w.kv("peak_time_ns", static_cast<std::int64_t>(s.peak_time));
      w.key("points").begin_array();
      for (const TimelinePoint& p : s.points) {
        w.begin_array();
        w.value(static_cast<std::int64_t>(p.time));
        w.value(p.value);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  if (!phases.empty()) {
    w.key("phases").begin_object();
    for (const auto& [filter, report] : phases) {
      w.key(filter);
      write_phase_report(w, report);
    }
    w.end_object();
  }
  w.end_object();
}

std::string RunReport::to_json() const {
  std::string out;
  JsonWriter w(out);
  write_json(w);
  return out;
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace dtio::obs
