// Metrics registry: named counters, gauges, and log-bucketed histograms,
// keyed by {metric name, label set}. The registry owns every instrument
// and hands out stable pointers, so instrumented code resolves a metric
// once (a map lookup) and then updates it with plain arithmetic — cheap
// enough to live on simulated hot paths.
//
// Histograms use log-linear buckets (one power of two split into
// kSubBuckets linear sub-buckets), bounding the relative quantile error
// at 1/kSubBuckets while keeping memory constant. Exact count, sum, min
// and max are tracked on the side.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace dtio::obs {

class JsonWriter;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

class Histogram {
 public:
  static constexpr int kSubBuckets = 8;  ///< per power of two
  static constexpr int kExponents = 63;
  // 0, 1, then kSubBuckets linear buckets per power of two in [2^1, 2^64).
  static constexpr int kBuckets = 2 + kExponents * kSubBuckets;

  /// Negative values clamp to zero (latencies and sizes are nonnegative).
  void record(std::int64_t value) noexcept;

  /// Bucket-wise sum; both histograms share the fixed layout.
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] std::int64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }

  /// Quantile estimate for p in [0, 100], e.g. percentile(99). Returns the
  /// representative value of the bucket containing the rank, clamped to
  /// the exact [min, max] envelope; zero when empty.
  [[nodiscard]] double percentile(double p) const noexcept;

 private:
  static int bucket_index(std::int64_t value) noexcept;
  static double bucket_mid(int index) noexcept;

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Builds a "k=v" / "k1=v1,k2=v2" label string.
[[nodiscard]] std::string label(std::string_view key, std::string_view value);
[[nodiscard]] std::string label(std::string_view key, std::int64_t value);
[[nodiscard]] std::string label(std::string_view k1, std::string_view v1,
                                std::string_view k2, std::int64_t v2);

class MetricsRegistry {
 public:
  /// Lookup-or-create; the returned reference is stable for the registry's
  /// lifetime. The same (name, labels) pair always yields the same object.
  Counter& counter(std::string_view name, std::string_view labels = "");
  Gauge& gauge(std::string_view name, std::string_view labels = "");
  Histogram& histogram(std::string_view name, std::string_view labels = "");

  /// Bucket-wise merge of every histogram named `name`, across all label
  /// sets — e.g. one latency distribution over all ops and nodes.
  [[nodiscard]] Histogram merged_histogram(std::string_view name) const;

  /// Same, restricted to label sets containing `label_contains` as a
  /// substring — e.g. ("client_op_latency_ns", "op=datatype_read") for one
  /// op's distribution across all nodes.
  [[nodiscard]] Histogram merged_histogram(std::string_view name,
                                           std::string_view label_contains) const;

  /// Sum of every counter named `name` across label sets.
  [[nodiscard]] std::uint64_t counter_total(std::string_view name) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// {"counters":[...],"gauges":[...],"histograms":[...]} with names,
  /// labels, and (for histograms) count/mean/p50/p90/p99/max.
  void write_json(JsonWriter& writer) const;
  [[nodiscard]] std::string to_json() const;

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  // std::map: deterministic export order, stable addresses via unique_ptr.
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dtio::obs
