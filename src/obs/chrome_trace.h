// Chrome trace-event exporter: renders a SpanCollector as the JSON array
// format that Perfetto (ui.perfetto.dev) and chrome://tracing load
// directly. Spans become complete ("ph":"X") events — pid = simulated
// node, tid = trace id, so each request chain reads as one track under
// its node — and counter samples become counter ("ph":"C") series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dtio::obs {

struct Observability;

struct ChromeTraceOptions {
  /// Display names per node id ("srv0", "cli3", ...); nodes beyond the
  /// vector fall back to "node<k>".
  std::vector<std::string> node_names;
};

/// Writes the complete trace document (spans + counter tracks + process
/// name metadata). Timestamps convert from simulated ns to trace us.
void write_chrome_trace(const Observability& obs, std::ostream& out,
                        const ChromeTraceOptions& options = {});

/// Same, to a file. Returns false when the file cannot be opened.
bool write_chrome_trace_file(const Observability& obs,
                             const std::string& path,
                             const ChromeTraceOptions& options = {});

}  // namespace dtio::obs
