// The FLASH I/O checkpoint workload (paper §4.4): each process holds 80
// AMR blocks; a block is an 8^3 array of interior cells surrounded by 4
// guard cells per side (16^3 cells in memory), and every cell carries 24
// double-precision variables stored adjacently (array-of-structs).
//
// The checkpoint reorganises to variable-major order in the file: for each
// variable, every process's blocks' interior cells are stored contiguously.
// Memory and file are therefore BOTH noncontiguous, with an 8-byte joint
// granularity — 983 040 joint pieces per process, the paper's stress case.
#pragma once

#include <cstdint>

#include "types/datatype.h"

namespace dtio::workloads {

struct FlashConfig {
  int blocks_per_proc = 80;
  int interior = 8;    ///< nxb = nyb = nzb
  int guard = 4;       ///< guard cells per side
  int num_vars = 24;
  std::int64_t var_bytes = 8;  ///< double

  [[nodiscard]] std::int64_t cells_per_edge() const noexcept {
    return interior + 2 * guard;  // 16
  }
  [[nodiscard]] std::int64_t interior_cells() const noexcept {
    return static_cast<std::int64_t>(interior) * interior * interior;  // 512
  }
  [[nodiscard]] std::int64_t cell_bytes() const noexcept {
    return num_vars * var_bytes;  // 192
  }
  /// In-memory bytes of one block including guard cells.
  [[nodiscard]] std::int64_t block_mem_bytes() const noexcept {
    const std::int64_t edge = cells_per_edge();
    return edge * edge * edge * cell_bytes();
  }
  /// Checkpoint bytes contributed per process (7.5 MiB at defaults).
  [[nodiscard]] std::int64_t bytes_per_proc() const noexcept {
    return static_cast<std::int64_t>(blocks_per_proc) * interior_cells() *
           num_vars * var_bytes;
  }
  /// Contiguous bytes per (variable, process) in the file.
  [[nodiscard]] std::int64_t var_chunk_bytes() const noexcept {
    return static_cast<std::int64_t>(blocks_per_proc) * interior_cells() *
           var_bytes;  // 320 KiB
  }
  /// Joint (memory, file) pieces per process — the POSIX op count.
  [[nodiscard]] std::int64_t joint_pieces() const noexcept {
    return static_cast<std::int64_t>(blocks_per_proc) * interior_cells() *
           num_vars;  // 983 040
  }
  [[nodiscard]] std::int64_t file_bytes(int nprocs) const noexcept {
    return bytes_per_proc() * nprocs;
  }

  /// Memory datatype: variable-major traversal of the in-memory blocks —
  /// for each variable, for each block, the interior cells' copy of that
  /// variable. Matches the file stream order as MPI requires.
  [[nodiscard]] types::Datatype memtype() const;

  /// File datatype for `rank` of `nprocs`: 24 contiguous chunks (one per
  /// variable section) of var_chunk_bytes each, strided by the section
  /// size nprocs * var_chunk_bytes. Anchor with displacement(rank).
  [[nodiscard]] types::Datatype filetype(int nprocs) const;
  [[nodiscard]] std::int64_t displacement(int rank) const noexcept {
    return rank * var_chunk_bytes();
  }
};

}  // namespace dtio::workloads
