// The tile-reader workload (paper §4.2): a 3x2 display wall where each
// compute node reads its own 1024x768x24bpp tile out of each frame, with
// 270-pixel horizontal and 128-pixel vertical overlap between tiles.
// Frames are 10.2 MB; the per-client access is a 2-D subarray of frame
// rows — 768 noncontiguous rows of 3072 bytes.
#pragma once

#include <cstdint>

#include "types/datatype.h"

namespace dtio::workloads {

struct TileConfig {
  int tiles_x = 3;
  int tiles_y = 2;
  int tile_width = 1024;   ///< pixels
  int tile_height = 768;   ///< pixels
  int bytes_per_pixel = 3; ///< 24-bit colour
  int overlap_x = 270;     ///< pixels shared between horizontal neighbours
  int overlap_y = 128;     ///< pixels shared between vertical neighbours
  int frames = 100;

  [[nodiscard]] int num_clients() const noexcept { return tiles_x * tiles_y; }
  [[nodiscard]] std::int64_t frame_width() const noexcept {
    return static_cast<std::int64_t>(tiles_x) * tile_width -
           static_cast<std::int64_t>(tiles_x - 1) * overlap_x;
  }
  [[nodiscard]] std::int64_t frame_height() const noexcept {
    return static_cast<std::int64_t>(tiles_y) * tile_height -
           static_cast<std::int64_t>(tiles_y - 1) * overlap_y;
  }
  [[nodiscard]] std::int64_t frame_bytes() const noexcept {
    return frame_width() * frame_height() * bytes_per_pixel;
  }
  [[nodiscard]] std::int64_t tile_bytes() const noexcept {
    return static_cast<std::int64_t>(tile_width) * tile_height *
           bytes_per_pixel;
  }
  /// Top-left pixel of a rank's tile within the frame.
  [[nodiscard]] std::int64_t tile_x0(int rank) const noexcept {
    return (rank % tiles_x) *
           static_cast<std::int64_t>(tile_width - overlap_x);
  }
  [[nodiscard]] std::int64_t tile_y0(int rank) const noexcept {
    return (rank / tiles_x) *
           static_cast<std::int64_t>(tile_height - overlap_y);
  }

  /// File datatype for `rank`: its tile as a subarray of one frame, with
  /// the whole frame as extent so consecutive instances tile frames.
  [[nodiscard]] types::Datatype tile_filetype(int rank) const;

  /// Memory datatype: the tile is read into a contiguous buffer.
  [[nodiscard]] types::Datatype memtype() const {
    return types::contiguous(tile_bytes(), types::byte_t());
  }

  /// Rows per tile = contiguous file pieces per frame (POSIX op count).
  [[nodiscard]] std::int64_t rows_per_tile() const noexcept {
    return tile_height;
  }
};

}  // namespace dtio::workloads
