#include "workloads/tile.h"

namespace dtio::workloads {

types::Datatype TileConfig::tile_filetype(int rank) const {
  const std::int64_t sizes[] = {frame_height(),
                                frame_width() * bytes_per_pixel};
  const std::int64_t subsizes[] = {
      tile_height, static_cast<std::int64_t>(tile_width) * bytes_per_pixel};
  const std::int64_t starts[] = {tile_y0(rank),
                                 tile_x0(rank) * bytes_per_pixel};
  return types::subarray(sizes, subsizes, starts, types::Order::kC,
                         types::byte_t());
}

}  // namespace dtio::workloads
