// The ROMIO coll_perf workload (paper §4.3): a 600^3 array of 4-byte
// integers block-decomposed over p = m^3 processes; each process reads or
// writes its own block. Memory is contiguous; the file side is a 3-D
// subarray whose rows are the contiguous pieces.
#pragma once

#include <cstdint>

#include "types/datatype.h"

namespace dtio::workloads {

struct Block3dConfig {
  std::int64_t dim = 600;      ///< array edge (elements)
  std::int64_t el_size = 4;    ///< int
  int blocks_per_edge = 2;     ///< m; clients = m^3

  [[nodiscard]] int num_clients() const noexcept {
    return blocks_per_edge * blocks_per_edge * blocks_per_edge;
  }
  [[nodiscard]] std::int64_t block_dim() const noexcept {
    return dim / blocks_per_edge;
  }
  [[nodiscard]] std::int64_t file_bytes() const noexcept {
    return dim * dim * dim * el_size;
  }
  [[nodiscard]] std::int64_t block_bytes() const noexcept {
    return block_dim() * block_dim() * block_dim() * el_size;
  }
  /// Contiguous file pieces per block: one per (plane, row).
  [[nodiscard]] std::int64_t rows_per_block() const noexcept {
    return block_dim() * block_dim();
  }

  /// File datatype for `rank`'s block (C-order block coordinates).
  [[nodiscard]] types::Datatype block_filetype(int rank) const;

  [[nodiscard]] types::Datatype memtype() const {
    return types::contiguous(block_bytes(), types::byte_t());
  }
};

}  // namespace dtio::workloads
