#include "workloads/flash.h"

#include <vector>

namespace dtio::workloads {

types::Datatype FlashConfig::memtype() const {
  // One variable slot inside a cell, with the whole cell as its extent so
  // consecutive elements step whole cells.
  auto var_slot = types::resized(types::double_t(), 0, cell_bytes());

  // The interior cells of one block (guard cells skipped) for one
  // variable; the subarray spans the full 16^3-cell block.
  const std::int64_t edge = cells_per_edge();
  const std::int64_t sizes[] = {edge, edge, edge};
  const std::int64_t subsizes[] = {interior, interior, interior};
  const std::int64_t starts[] = {guard, guard, guard};
  auto one_var_one_block =
      types::subarray(sizes, subsizes, starts, types::Order::kC, var_slot);

  // All blocks for one variable: blocks are adjacent in memory, and the
  // subarray's extent is already the full block footprint.
  auto one_var_all_blocks =
      types::contiguous(blocks_per_proc, one_var_one_block);

  // All variables, variable-major: variable v's elements sit v*var_bytes
  // into each cell. hindexed over the same type with byte displacements.
  std::vector<std::int64_t> blocklens(static_cast<std::size_t>(num_vars), 1);
  std::vector<std::int64_t> displs;
  displs.reserve(static_cast<std::size_t>(num_vars));
  for (int v = 0; v < num_vars; ++v) displs.push_back(v * var_bytes);
  return types::hindexed(blocklens, displs, one_var_all_blocks);
}

types::Datatype FlashConfig::filetype(int nprocs) const {
  // 24 chunks of var_chunk_bytes, one per variable section, strided by the
  // per-variable section size.
  return types::hvector(num_vars, var_chunk_bytes(),
                        nprocs * var_chunk_bytes(), types::byte_t());
}

}  // namespace dtio::workloads
