#include "workloads/block3d.h"

namespace dtio::workloads {

types::Datatype Block3dConfig::block_filetype(int rank) const {
  const std::int64_t m = blocks_per_edge;
  const std::int64_t bd = block_dim();
  const std::int64_t bx = rank % m;
  const std::int64_t by = (rank / m) % m;
  const std::int64_t bz = rank / (m * m);
  // Work in byte elements with the fastest dimension scaled by el_size so
  // rows are single contiguous runs.
  const std::int64_t sizes[] = {dim, dim, dim * el_size};
  const std::int64_t subsizes[] = {bd, bd, bd * el_size};
  const std::int64_t starts[] = {bz * bd, by * bd, bx * bd * el_size};
  return types::subarray(sizes, subsizes, starts, types::Order::kC,
                         types::byte_t());
}

}  // namespace dtio::workloads
