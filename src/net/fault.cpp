#include "net/fault.h"

#include <algorithm>

#include "obs/observability.h"

namespace dtio::net {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kOutage:
      return "outage";
  }
  return "unknown";
}

void FaultPlan::set_observability(obs::Observability* obs) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    obs_kind_[k] =
        obs == nullptr
            ? nullptr
            : &obs->metrics.counter(
                  "faults_injected_total",
                  obs::label("kind",
                             fault_kind_name(static_cast<FaultKind>(k))));
  }
}

void FaultPlan::record(FaultKind kind, int src, int dst, SimTime now,
                       std::uint64_t tag) {
  switch (kind) {
    case FaultKind::kDrop:
      ++counters_.dropped;
      break;
    case FaultKind::kDuplicate:
      ++counters_.duplicated;
      break;
    case FaultKind::kCorrupt:
      ++counters_.corrupted;
      break;
    case FaultKind::kDelay:
      ++counters_.delayed;
      break;
    case FaultKind::kOutage:
      ++counters_.outage_dropped;
      break;
  }
  if (obs_kind_[static_cast<int>(kind)] != nullptr) {
    obs_kind_[static_cast<int>(kind)]->add(1);
  }
  if (log_events_) events_.push_back(FaultEvent{now, kind, src, dst, tag});
}

FaultPlan::Decision FaultPlan::apply(int src, int dst, SimTime now,
                                     sim::Message& msg) {
  Decision decision;
  if (src >= scope_max_node_ && dst >= scope_max_node_) return decision;

  // Effective spec: max-combine the default with every matching window.
  // Outage windows short-circuit without consuming an RNG draw, so a
  // scheduled crash does not perturb the probabilistic fault stream.
  FaultSpec spec = default_;
  for (const Window& w : windows_) {
    if (w.node != src && w.node != dst) continue;
    if (now < w.from || now >= w.until) continue;
    if (w.outage) {
      decision.deliver = false;
      record(FaultKind::kOutage, src, dst, now, msg.tag);
      return decision;
    }
    spec.drop = std::max(spec.drop, w.spec.drop);
    spec.duplicate = std::max(spec.duplicate, w.spec.duplicate);
    spec.corrupt = std::max(spec.corrupt, w.spec.corrupt);
    if (w.spec.delay > spec.delay) {
      spec.delay = w.spec.delay;
      spec.delay_min = w.spec.delay_min;
      spec.delay_max = w.spec.delay_max;
    }
  }
  if (!spec.active()) return decision;

  if (spec.drop > 0 && rng_.next_double() < spec.drop) {
    decision.deliver = false;
    record(FaultKind::kDrop, src, dst, now, msg.tag);
    return decision;
  }
  if (spec.duplicate > 0 && rng_.next_double() < spec.duplicate) {
    decision.duplicate_copy = msg;  // copied before any corruption below
    record(FaultKind::kDuplicate, src, dst, now, msg.tag);
  }
  if (corruptor_ && spec.corrupt > 0 && rng_.next_double() < spec.corrupt &&
      corruptor_(msg, rng_)) {
    record(FaultKind::kCorrupt, src, dst, now, msg.tag);
  }
  if (spec.delay > 0 && rng_.next_double() < spec.delay) {
    const SimTime span = std::max<SimTime>(spec.delay_max - spec.delay_min, 0);
    decision.extra_delay =
        spec.delay_min +
        static_cast<SimTime>(rng_.next_below(
            static_cast<std::uint64_t>(span) + 1));
    record(FaultKind::kDelay, src, dst, now, msg.tag);
  }
  return decision;
}

}  // namespace dtio::net
