// Deterministic fault injection for the simulated interconnect.
//
// A FaultPlan sits on Network::send and decides, per message, whether to
// drop, duplicate, corrupt, or delay it. Decisions are driven by a single
// seeded Rng plus declarative scheduled windows ("server 3 unreachable
// from t=50ms to t=120ms"), so a chaos run replays bit-for-bit from one
// seed. The plan is payload-agnostic: bit-flips are delegated to a
// corruptor callback installed by the protocol layer, which keeps net/
// free of pfs/ dependencies and lets the corruptor copy-on-write shared
// buffers (retries must resend clean data).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/mailbox.h"

namespace dtio::obs {
class Counter;
struct Observability;
}  // namespace dtio::obs

namespace dtio::net {

enum class FaultKind : std::uint8_t {
  kDrop = 0,   ///< message vanishes after transmission (lost on the wire)
  kDuplicate,  ///< a second full copy of the message is transmitted
  kCorrupt,    ///< payload bit-flip (via the installed corruptor)
  kDelay,      ///< extra delivery latency; doubles as reordering
  kOutage,     ///< dropped by a scheduled unreachability window
};
inline constexpr int kNumFaultKinds = 5;

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// Per-link fault probabilities. All default to zero (clean link).
struct FaultSpec {
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  double delay = 0.0;
  /// Extra latency range for kDelay, uniform in [delay_min, delay_max].
  SimTime delay_min = 500 * kMicrosecond;
  SimTime delay_max = 5 * kMillisecond;

  [[nodiscard]] bool active() const noexcept {
    return drop > 0 || duplicate > 0 || corrupt > 0 || delay > 0;
  }
};

/// One recorded injection, for determinism assertions and debugging.
struct FaultEvent {
  SimTime time = 0;
  FaultKind kind = FaultKind::kDrop;
  int src = 0;
  int dst = 0;
  std::uint64_t tag = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Injection totals by kind (always maintained, even without obs attached).
struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t outage_dropped = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return dropped + duplicated + corrupted + delayed + outage_dropped;
  }
  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Baseline probabilities applied to every in-scope message.
  void set_default_spec(const FaultSpec& spec) { default_ = spec; }

  /// Additional probabilities while `now` is in [from, until) on any link
  /// touching `node` (as source or destination). Probabilities combine
  /// with the default by taking the maximum per kind.
  void add_window(int node, SimTime from, SimTime until,
                  const FaultSpec& spec) {
    windows_.push_back(Window{node, from, until, spec, /*outage=*/false});
  }

  /// `node` is unreachable during [from, until): every message to or from
  /// it is dropped, deterministically (no RNG draw consumed).
  void add_outage(int node, SimTime from, SimTime until) {
    windows_.push_back(Window{node, from, until, FaultSpec{}, /*outage=*/true});
  }

  /// Degraded-node window: server `node`'s disk and CPU service times are
  /// inflated by `factor` (> 1) during [from, until) — a straggler, not a
  /// corpse. Purely declarative and RNG-free (the server queries
  /// degraded_factor() when charging service time), so adding a window
  /// neither consumes a draw nor perturbs the probabilistic fault stream;
  /// straggler scenarios replay bit-for-bit like outages.
  void add_degraded(int node, SimTime from, SimTime until, double factor) {
    degraded_.push_back(Degraded{node, from, until, factor});
  }

  /// Service-time inflation for `node` at time `now`: the max factor over
  /// matching degraded windows, 1.0 when none match. No RNG draw.
  [[nodiscard]] double degraded_factor(int node, SimTime now) const noexcept {
    double factor = 1.0;
    for (const Degraded& d : degraded_) {
      if (d.node == node && now >= d.from && now < d.until) {
        factor = std::max(factor, d.factor);
      }
    }
    return factor;
  }
  [[nodiscard]] bool has_degraded_windows() const noexcept {
    return !degraded_.empty();
  }

  /// Restrict injection to links with at least one endpoint below
  /// `max_node`. Lets chaos runs fault only client<->server links (nodes
  /// [0, num_servers)) while collective client<->client exchanges, which
  /// have no retry layer, stay clean.
  void set_scope_max_node(int max_node) noexcept { scope_max_node_ = max_node; }

  /// Payload mutator installed by the protocol layer: flip bits in `msg`'s
  /// body using `rng`, returning false when the message carries nothing
  /// corruptible (the corruption then does not count as injected).
  using Corruptor = std::function<bool(sim::Message&, Rng&)>;
  void set_corruptor(Corruptor corruptor) { corruptor_ = std::move(corruptor); }

  /// Record every injection in events() (off by default; chaos tests use
  /// it to assert identical sequences across same-seed runs).
  void set_log_events(bool on) noexcept { log_events_ = on; }

  /// Attach the observability context (nullptr detaches): resolves one
  /// faults_injected_total{kind=...} counter per kind.
  void set_observability(obs::Observability* obs);

  /// The verdict for one message. `deliver == false` means the message is
  /// transmitted but never delivered; `duplicate_copy`, when present, is a
  /// second copy for the network to transmit (taken before any corruption,
  /// so a duplicated-then-corrupted message still gets one clean copy
  /// through — the case that exercises rejection + idempotent replay);
  /// `extra_delay` is added before delivery.
  struct Decision {
    bool deliver = true;
    SimTime extra_delay = 0;
    std::optional<sim::Message> duplicate_copy;
  };

  /// Decide the fate of `msg` (may corrupt it in place via the corruptor).
  /// Called by Network::send for every non-loopback message when a plan is
  /// attached.
  Decision apply(int src, int dst, SimTime now, sim::Message& msg);

  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }

 private:
  struct Window {
    int node;
    SimTime from;
    SimTime until;
    FaultSpec spec;
    bool outage;
  };
  struct Degraded {
    int node;
    SimTime from;
    SimTime until;
    double factor;
  };

  void record(FaultKind kind, int src, int dst, SimTime now,
              std::uint64_t tag);

  Rng rng_;
  FaultSpec default_;
  std::vector<Window> windows_;
  std::vector<Degraded> degraded_;
  int scope_max_node_ = std::numeric_limits<int>::max();
  Corruptor corruptor_;
  bool log_events_ = false;
  std::vector<FaultEvent> events_;
  FaultCounters counters_;
  obs::Counter* obs_kind_[kNumFaultKinds] = {};
};

}  // namespace dtio::net
