#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/box.h"
#include "net/fault.h"
#include "obs/observability.h"

namespace dtio::net {

Network::Network(sim::Scheduler& sched, int num_nodes, NetConfig config)
    : sched_(&sched), config_(config) {
  assert(num_nodes >= 1);
  endpoints_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    endpoints_.push_back(std::make_unique<Endpoint>(sched));
  }
  if (config_.fabric_bandwidth_bytes_per_s > 0) {
    fabric_ = std::make_unique<sim::Resource>(sched, 1);
  }
}

void Network::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    obs_messages_ = nullptr;
    obs_wire_bytes_ = nullptr;
    return;
  }
  obs_messages_ = &obs->metrics.counter("net_messages_total");
  obs_wire_bytes_ = &obs->metrics.counter("net_wire_bytes_total");
}

// Non-coroutine entry point: boxes the message before the coroutine frame
// is created (by-value coroutine params must be trivially destructible on
// this compiler — see common/box.h).
sim::Task<void> Network::send(int src, int dst, sim::Message msg) {
  msg.src = src;
  SimTime extra_delay = 0;
  bool deliver = true;
  if (fault_ != nullptr && src != dst) {
    FaultPlan::Decision d = fault_->apply(src, dst, sched_->now(), msg);
    extra_delay = d.extra_delay;
    deliver = d.deliver;
    if (d.duplicate_copy.has_value()) {
      sched_->start(duplicate_send(
          src, dst, Box<sim::Message>(std::move(*d.duplicate_copy))));
    }
  }
  return send_impl(src, dst, Box<sim::Message>(std::move(msg)), extra_delay,
                   deliver);
}

sim::Fire Network::duplicate_send(int src, int dst, Box<sim::Message> boxed) {
  co_await send_impl(src, dst, std::move(boxed), 0, true);
}

sim::Task<void> Network::send_impl(int src, int dst, Box<sim::Message> boxed,
                                   SimTime extra_delay, bool deliver) {
  sim::Message msg = boxed.take();
  const std::uint64_t bytes =
      msg.wire_bytes + config_.per_message_overhead_bytes;
  ++total_messages_;
  total_wire_bytes_ += bytes;
  inflight_wire_bytes_ += bytes;
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "send", src, dst, msg.tag, bytes, ""});
  }
  std::uint64_t net_span = 0;
  if (obs_ != nullptr) {
    obs_messages_->add(1);
    obs_wire_bytes_->add(bytes);
    // One span per message, covering first-byte-out to delivery; parented
    // under whatever span the sender stamped on the message and typed with
    // whatever phase the sender stamped (request vs reply direction).
    net_span = obs_->spans.begin("net_send", src, sched_->now(), msg.span,
                                 msg.trace, static_cast<obs::Phase>(msg.phase));
    obs_->spans.set_value(net_span, static_cast<std::int64_t>(bytes));
  }

  if (src == dst) {
    // Loopback: no link occupancy, only a small local latency. Fault
    // injection never targets loopback, so extra_delay/deliver are moot.
    sim::Mailbox* box = &endpoint(dst).mailbox;
    sched_->schedule_call(
        sched_->now() + config_.loopback_latency,
        [this, box, net_span, bytes, m = std::move(msg)]() mutable {
          inflight_wire_bytes_ -= bytes;
          if (obs_ != nullptr) obs_->spans.end(net_span, sched_->now());
          box->deliver(std::move(m));
        });
    co_return;
  }

  Endpoint& sender = endpoint(src);
  Endpoint& receiver = endpoint(dst);
  sender.tx_bytes += bytes;
  receiver.rx_bytes += bytes;

  std::uint64_t remaining = bytes;
  while (true) {
    const std::uint64_t pkt = std::min<std::uint64_t>(remaining, config_.mtu);
    remaining -= pkt;
    const bool last = remaining == 0;
    const SimTime wire_time = transfer_time(pkt, config_.bandwidth_bytes_per_s);

    co_await sender.tx.use(wire_time);
    sched_->start(receive_packet(
        dst, wire_time,
        last ? Box<sim::Message>(std::move(msg)) : Box<sim::Message>{},
        last ? net_span : 0, last ? extra_delay : 0, deliver));
    if (last) break;
  }
}

sim::Fire Network::receive_packet(int dst, SimTime rx_hold,
                                  Box<sim::Message> boxed,
                                  std::uint64_t net_span, SimTime extra_delay,
                                  bool deliver) {
  // Pipeline stages per packet: (tx already held by the sender) ->
  // shared fabric -> wire latency -> receiver rx. Stages overlap across
  // packets, so sustained flows see min(stage bandwidths).
  if (fabric_) {
    const std::uint64_t pkt_bytes = static_cast<std::uint64_t>(
        static_cast<double>(rx_hold) / kSecond *
        config_.bandwidth_bytes_per_s);
    co_await fabric_->use(
        transfer_time(pkt_bytes, config_.fabric_bandwidth_bytes_per_s));
  }
  co_await sched_->delay(config_.latency);
  Endpoint& receiver = endpoint(dst);
  co_await receiver.rx.use(rx_hold);
  if (boxed.has_value()) {
    sim::Message msg = boxed.take();
    inflight_wire_bytes_ -= msg.wire_bytes + config_.per_message_overhead_bytes;
    if (!deliver) {
      // Fault-injected loss: the bytes crossed the wire but the message
      // never reaches the mailbox. Close the span here so traces show
      // where the loss happened.
      if (tracer_ != nullptr) {
        tracer_->record({sched_->now(), "lost", dst, msg.src, msg.tag,
                         msg.wire_bytes, ""});
      }
      if (obs_ != nullptr) obs_->spans.end(net_span, sched_->now());
      co_return;
    }
    if (extra_delay > 0) co_await sched_->delay(extra_delay);
    if (tracer_ != nullptr) {
      tracer_->record({sched_->now(), "deliver", dst, msg.src, msg.tag,
                       msg.wire_bytes, ""});
    }
    if (obs_ != nullptr) obs_->spans.end(net_span, sched_->now());
    receiver.mailbox.deliver(std::move(msg));
  }
}

}  // namespace dtio::net
