// The cost model describing the simulated cluster.
//
// Defaults are calibrated to the paper's testbed (Argonne Chiba City,
// §4.1): 100 Mbit/s full-duplex fast ethernet per node, one SCSI disk per
// I/O server, dual-PIII nodes. The paper's results are driven by ratios —
// request count x latency, bytes of I/O description on the wire, per-region
// processing cost, doubled data movement in two-phase — all of which appear
// here as explicit parameters, so sensitivity studies are one knob away.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.h"

namespace dtio::net {

struct NetConfig {
  /// Payload bandwidth per link direction. 100 Mbit/s ethernet delivers
  /// ~11.5 MiB/s of TCP payload after framing/protocol overhead.
  double bandwidth_bytes_per_s = 11.5 * 1024 * 1024;

  /// One-way wire+stack latency per packet.
  dtio::SimTime latency = 80 * dtio::kMicrosecond;

  /// Store-and-forward segment size. Large transfers are pipelined in
  /// MTU-sized packets so single-flow throughput approaches link bandwidth.
  std::uint64_t mtu = 64 * dtio::kKiB;

  /// Fixed header bytes charged per message (request framing).
  std::uint64_t per_message_overhead_bytes = 64;

  /// Cost of an intra-node "send" (aggregator to itself in two-phase).
  dtio::SimTime loopback_latency = 5 * dtio::kMicrosecond;

  /// Aggregate switch-fabric (bisection) bandwidth shared by ALL
  /// inter-node traffic; 0 disables the stage. Chiba City's fast-ethernet
  /// edge fed shared uplinks, so cluster-wide throughput plateaued well
  /// below num_nodes x link speed — this is what makes two-phase's double
  /// data movement expensive at scale (paper §4.4) and what the aggregate
  /// bandwidth curves flatten against.
  double fabric_bandwidth_bytes_per_s = 60.0 * 1024 * 1024;
};

struct ServerConfig {
  /// Effective storage bandwidth (buffered SCSI disk behind the VFS).
  double disk_bandwidth_bytes_per_s = 30.0 * 1024 * 1024;

  /// Per-storage-access setup (request dispatch into the storage layer).
  dtio::SimTime disk_access_overhead = 400 * dtio::kMicrosecond;

  /// Per-request CPU: decode, job construction, response setup. PVFS1
  /// handled each request on a fresh TCP interaction through a
  /// single-threaded iod; small-request handling cost ~1 ms.
  dtio::SimTime request_overhead = 700 * dtio::kMicrosecond;

  /// CPU cost per offset-length access region handled by the server
  /// (building the PVFS job/access structures and walking them). This is
  /// the term behind the paper's §4.3 observation that server-side list
  /// processing depresses read performance at scale.
  dtio::SimTime per_region_cost = 4 * dtio::kMicrosecond;

  /// Per-region cost on the WRITE path. Writes scatter an already-ordered
  /// incoming stream and ack once data is queued behind the buffer cache,
  /// so the per-region work the client waits on is much smaller — the
  /// asymmetry behind §4.3's "reads dip, writes don't (TCP buffering)".
  dtio::SimTime per_region_cost_write = 300;  // ns

  /// CPU cost per offset-length region when the region is produced by the
  /// dataloop engine on the server (datatype I/O). The paper's PROTOTYPE
  /// still builds the traditional PVFS job/access lists on the server
  /// (§3.1/§3.2), so this matches per_region_cost by default — which is
  /// exactly what produces the read-side performance dip at high client
  /// counts in §4.3. A full-featured implementation operating directly on
  /// the dataloop would push this toward zero (see the ablation bench).
  dtio::SimTime per_dataloop_region_cost = 2 * dtio::kMicrosecond;  // reads
  dtio::SimTime per_dataloop_region_cost_write = 300;  // ns

  /// Cost to decode a shipped dataloop (per dataloop node).
  dtio::SimTime dataloop_decode_cost_per_node = 2 * dtio::kMicrosecond;

  /// Server-side datatype cache (the paper's S5 future-work item, after
  /// the RMA datatype caching of Traff et al.): remember decoded dataloops
  /// by wire hash and skip the decode on repeated requests -- e.g. the
  /// tile reader ships the same filetype 100 frames in a row.
  bool dataloop_cache = false;
  std::size_t dataloop_cache_entries = 64;

  /// Stripe-aware pruned dataloop expansion: while walking a shipped
  /// datatype, the server skips whole subtrees whose file-offset span
  /// misses its own strips (Cursor::set_filter +
  /// FileLayout::intersects_server) instead of generating and discarding
  /// every other server's regions. Turns per-server expansion cost from
  /// O(total regions) into O(own regions + subtrees probed). Off = legacy
  /// full-expansion behaviour, kept for ablation.
  bool pruned_expansion = true;

  /// CPU cost per pruned subtree: one span/stripe intersection probe
  /// (a handful of integer ops) charged for each subtree skipped.
  dtio::SimTime subtree_probe_cost = 50;  // ns

  /// Idempotent-replay window: how many recent write/create acks the
  /// server remembers per (client, sequence) key. A retried request whose
  /// ack is still in the window is re-acknowledged without re-applying.
  std::size_t replay_window_entries = 1024;

  /// Age bound on replay-window entries (simulated time; 0 = count-only
  /// eviction, the default — scenarios opt in like the other robustness
  /// gates). Long-lived clients with sparse retries would otherwise pin
  /// stale acks until the FIFO wraps; entries older than this are expired
  /// on insert/lookup, so a replay arriving after expiry re-executes.
  /// Host-side state only — expiry never changes the event sequence of a
  /// run without retries.
  dtio::SimTime replay_window_max_age = 0;

  /// Admission control: bound on the request backlog (mailbox queue) a
  /// server tolerates before shedding data requests with kOverloaded
  /// instead of letting queues grow without bound. 0 (default) = unbounded
  /// legacy behaviour; everything below is dormant and the event sequence
  /// is bit-identical.
  std::size_t max_queue_depth = 0;

  /// Companion byte bound on the queued backlog (wire bytes of queued
  /// requests). 0 = no byte bound. Either bound tripping sheds.
  std::uint64_t max_queued_bytes = 0;

  /// CPU charged to fast-reject one shed request (header decode + reply
  /// setup — far below request_overhead, which is the point of shedding).
  dtio::SimTime shed_cost = 50 * dtio::kMicrosecond;

  // ---- Server buffer cache (src/cache/; all default-off — both knobs
  // below must be nonzero to enable, and the disabled event sequence is
  // bit-identical to the legacy charge-per-access path).

  /// Cache block size in bytes. 0 = cache off.
  std::int64_t cache_block_bytes = 0;

  /// Cache capacity in bytes. 0 = cache off.
  std::int64_t cache_capacity_bytes = 0;

  /// Write-through: stores hit the bstream and charge the disk
  /// synchronously (durable immediately). Default is write-back: dirty
  /// blocks stage in the cache and flush in the background, coalesced —
  /// faster, but a crash loses unflushed dirty data.
  bool cache_write_through = false;

  /// Max blocks prefetched per detected-stream trigger; 0 disables
  /// readahead.
  int cache_readahead_blocks = 8;

  /// Consecutive equal strides on a handle before readahead arms.
  int cache_readahead_min_run = 2;

  /// Dirty fraction of capacity that triggers a background flush of the
  /// oldest dirty blocks (write-back only).
  double cache_dirty_watermark = 0.5;

  // ---- Restart resync (ClusterConfig::replication > 1 only; dormant —
  // and the event sequence bit-identical — at replication 1).

  /// Reply deadline per kResyncPull RPC issued during the restart resync
  /// phase, and the retry_after hint attached to writes refused while the
  /// phase runs.
  dtio::SimTime resync_pull_timeout = 50 * dtio::kMillisecond;

  /// Attempts per replica peer before the peer is skipped (bounds the
  /// resync phase under an adversarial fault plan; skips are counted in
  /// ServerStats::resync_peers_skipped and the next restart retries).
  int resync_pull_attempts = 3;
};

struct ClientConfig {
  /// CPU cost per offset-length pair produced while flattening an MPI
  /// datatype into a list (list I/O, POSIX I/O, data sieving).
  dtio::SimTime flatten_cost_per_region = 1000;  // ns

  /// CPU cost per region emitted by local dataloop processing (memory-side
  /// packing/unpacking in datatype I/O). The prototype converts the MPI
  /// type and builds job/access structures on every call (§3.1-3.2), so
  /// this exceeds ROMIO's tight flatten loop — the reason list AND
  /// datatype I/O "underperform at small numbers of clients" on FLASH's
  /// million-region memory type (§4.4).
  dtio::SimTime dataloop_cost_per_region = 2500;  // ns

  /// Cost to build a dataloop from an MPI datatype (per datatype node,
  /// charged on every MPI-IO call; the paper notes this makes datatype I/O
  /// locally slightly more expensive than list I/O, §3.2).
  dtio::SimTime dataloop_build_cost_per_node = 3 * dtio::kMicrosecond;

  /// memcpy bandwidth for buffer packing/extraction (data sieving extract,
  /// two-phase staging, datatype pack/unpack).
  double memcpy_bandwidth_bytes_per_s = 400.0 * 1024 * 1024;

  /// Fixed CPU cost to issue one file-system operation.
  dtio::SimTime issue_overhead = 100 * dtio::kMicrosecond;

  /// Client write-behind: per-server staging-buffer high watermark in
  /// bytes. 0 (default) = off — every write is a synchronous RPC round
  /// and the legacy event sequence is bit-identical. Nonzero: write-class
  /// ops are absorbed into per-server buffers (coalescing adjacent and
  /// overlapping runs in arrival order) and flushed as one kBatchWrite
  /// envelope per server when the buffer reaches this watermark, at an
  /// explicit flush/close/barrier, at a lock boundary, or when a read
  /// overlaps staged bytes (the read drains that server's buffer first,
  /// preserving the byte-identical-vs-oracle contract). Write errors
  /// surface at the flush that carries them.
  std::int64_t write_behind_bytes = 0;

  /// Per-request reply deadline in simulated time. 0 (the default)
  /// disables the reliability layer entirely: requests wait forever,
  /// exactly the pre-fault-injection behaviour (and the behaviour PVFS
  /// offers — a lost reply hangs the client). Set nonzero to arm
  /// timeout + retry; it must comfortably exceed the worst-case service
  /// time or false timeouts will inflate traffic (retries stay correct
  /// either way, via fresh reply tags and the server replay window).
  dtio::SimTime rpc_timeout = 0;

  /// Total attempts per request (1 = no retries) when rpc_timeout > 0.
  int rpc_max_attempts = 5;

  /// Backoff before attempt n+1: base * multiplier^(n-1), plus a
  /// deterministic jitter drawn from the client's seeded RNG, uniform in
  /// [0, jitter * backoff).
  dtio::SimTime rpc_backoff_base = 2 * dtio::kMillisecond;
  double rpc_backoff_multiplier = 2.0;
  double rpc_backoff_jitter = 0.25;

  // ---- Overload protection (all default-off; see docs/fault-model.md).
  // The three mechanisms below act per server ("lane") inside the
  // reliable RPC path (rpc_timeout > 0) and are individually gated.

  /// AIMD outstanding-request window cap per server. 0 = no flow control.
  /// When set, at most floor(window) RPCs to one server are in flight per
  /// client; the window starts at the cap, halves (floor 1) on
  /// kOverloaded or timeout, and creeps back by 1/window per success —
  /// TCP-style backpressure that reaches the issuer instead of piling
  /// into the server's mailbox.
  int flow_window = 0;

  /// Circuit breaker: consecutive attempt failures (timeouts, unreachable)
  /// on one server before the breaker opens. 0 = breaker off. While open,
  /// RPCs to that server fail fast with kUnavailable (no wire traffic);
  /// after breaker_open_duration one half-open probe is let through —
  /// success closes the breaker, failure re-opens it.
  int breaker_failures = 0;
  dtio::SimTime breaker_open_duration = 50 * dtio::kMillisecond;

  /// EWMA smoothing for per-server latency / failure-rate health tracking
  /// (diagnostics; breaker trips on the consecutive-failure count).
  double health_ewma_alpha = 0.2;

  /// Hedged reads: percentile of the per-server observed attempt-latency
  /// distribution after which a read-class RPC issues one hedge to the
  /// same server on a fresh reply tag (first reply wins; the loser parks
  /// unclaimed, exactly like a stale retry reply). 0 = hedging off.
  /// Requires rpc_timeout > 0; the hedge extends the attempt's wait by a
  /// fresh rpc_timeout, so a slow-but-alive primary still counts — the
  /// mechanism that beats timeout-and-discard under a degraded server.
  double hedge_quantile = 0;
  /// Successful samples required on a lane before hedging arms (a
  /// quantile of nothing is noise).
  int hedge_min_samples = 16;

  /// Write quorum under replication (ClusterConfig::replication > 1): how
  /// many replica acks a write needs before it completes. 0 (default) =
  /// all replicas (w = r, strongest); values in [1, r) complete the write
  /// early while the remaining replica RPCs drain in the background.
  /// Ignored when replication is off.
  int write_quorum = 0;
};

/// How two-phase aggregators write back rounds whose merged contributions
/// have holes (paper §2.3: "other noncontiguous access methods ... can be
/// leveraged for further optimization" — and §5's "leveraging datatype I/O
/// underneath two-phase I/O").
enum class CbWriteMode {
  kRmw,       ///< read-modify-write of the hull (ROMIO default)
  kList,      ///< write only the contributed regions via list I/O
  kDatatype,  ///< write only the contributed regions via datatype I/O
};

/// Everything the benches need to instantiate a cluster.
struct ClusterConfig {
  int num_servers = 16;       ///< I/O servers (one doubles as metadata server)
  int num_clients = 8;
  std::uint64_t strip_size = 64 * dtio::kKiB;  ///< PVFS striping unit

  /// k-way strip replication factor. 1 (default) = off — single-copy PVFS
  /// semantics and a bit-identical legacy event sequence. r > 1 mirrors
  /// strip s's primary p onto servers (p+1 .. p+r-1) mod num_servers:
  /// client writes fan out to every replica and complete on
  /// ClientConfig::write_quorum acks; reads go to the primary and fail
  /// over to the next replica on kUnavailable/timeout/breaker-open; a
  /// restarting server resyncs diverged strips from its peers (kResyncPull)
  /// before serving data again. Requires client.rpc_timeout > 0 on the
  /// client side (the legacy no-timeout path never replicates).
  int replication = 1;

  /// The single run seed. Every seeded component (client RPC jitter,
  /// fault plans, randomized workloads) derives its stream from this via
  /// mix_seed(seed, salt). Overridden by the DTIO_SEED environment
  /// variable when the Cluster is constructed, and logged at startup, so
  /// one number reproduces a whole chaos run.
  std::uint64_t seed = 1;

  NetConfig net;
  ServerConfig server;
  ClientConfig client;

  /// ROMIO buffer sizes (paper §4.1: 4 MiB for sieving and collective).
  std::uint64_t sieve_buffer_size = 4 * dtio::kMiB;
  std::uint64_t cb_buffer_size = 4 * dtio::kMiB;

  /// Max offset-length pairs per list-I/O request (paper §2.4: bounded
  /// request size reduces ops "by a factor of 64").
  std::uint64_t list_io_max_regions = 64;

  /// Bytes of request payload per offset-length pair shipped by list I/O.
  std::uint64_t list_io_bytes_per_region = 16;

  /// Aggregator write-back strategy for holey rounds.
  CbWriteMode cb_write_noncontig = CbWriteMode::kRmw;

  /// Whether the file system offers file locking. PVFS does not (paper
  /// §4.1), which rules out data-sieving writes; flip this to model a
  /// locking file system and enable the read-modify-write path.
  bool file_locking = false;

  /// The paper's §5 "full-featured" configuration (the PVFS2 direction):
  /// no offset-length lists are materialised on either side — servers and
  /// clients operate directly on the dataloop representation — and servers
  /// cache decoded datatypes. Widens datatype I/O's lead further.
  [[nodiscard]] ClusterConfig pvfs2_mode() const {
    ClusterConfig cfg = *this;
    cfg.server.per_dataloop_region_cost = 0;
    cfg.server.per_dataloop_region_cost_write = 0;
    cfg.server.dataloop_cache = true;
    cfg.client.dataloop_cost_per_region = 100;  // ns: pure traversal
    return cfg;
  }

  /// Node id of client `rank` (servers occupy [0, num_servers)).
  [[nodiscard]] int client_node(int rank) const noexcept {
    return num_servers + rank;
  }
  [[nodiscard]] int total_nodes() const noexcept {
    return num_servers + num_clients;
  }
};

}  // namespace dtio::net
