// Simulated cluster interconnect: per-node full-duplex links with
// latency + bandwidth and MTU packetisation, feeding per-node mailboxes.
//
// Contention is physical: a node's outbound packets serialize on its tx
// link, inbound packets on its rx link, so N clients writing to one server
// exhibit incast at the server's rx resource exactly as N TCP flows share
// a fast-ethernet port.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/box.h"
#include "net/cost_model.h"
#include "sim/mailbox.h"
#include "sim/resource.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "sim/tracer.h"

namespace dtio::obs {
class Counter;
struct Observability;
}  // namespace dtio::obs

namespace dtio::net {

class FaultPlan;

class Network {
 public:
  Network(sim::Scheduler& sched, int num_nodes, NetConfig config);

  /// Transmit `msg` from `src` to `dst`. Resumes the caller once the last
  /// byte has left src's NIC (kernel-buffered semantics); delivery to dst's
  /// mailbox happens later, after latency and rx-link serialisation.
  sim::Task<void> send(int src, int dst, sim::Message msg);

  [[nodiscard]] sim::Mailbox& mailbox(int node) { return endpoint(node).mailbox; }
  /// Shared fabric stage, or nullptr when disabled (diagnostics).
  [[nodiscard]] sim::Resource* fabric() noexcept { return fabric_.get(); }

  /// Attach an event tracer (nullptr detaches). Not owned.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach a fault-injection plan (nullptr detaches). Not owned. When
  /// detached — the default — the send path pays exactly one pointer test.
  void set_fault_plan(FaultPlan* plan) noexcept { fault_ = plan; }
  [[nodiscard]] FaultPlan* fault_plan() const noexcept { return fault_; }

  /// Attach the observability context (nullptr detaches). Not owned.
  /// Resolves the message/byte counters once so the send path never pays a
  /// registry lookup; when detached the cost is one pointer test.
  void set_observability(obs::Observability* obs);
  [[nodiscard]] sim::Resource& tx_link(int node) { return endpoint(node).tx; }
  [[nodiscard]] sim::Resource& rx_link(int node) { return endpoint(node).rx; }

  [[nodiscard]] int num_nodes() const noexcept {
    return static_cast<int>(endpoints_.size());
  }
  [[nodiscard]] const NetConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return total_messages_;
  }
  [[nodiscard]] std::uint64_t total_wire_bytes() const noexcept {
    return total_wire_bytes_;
  }
  /// Wire bytes accepted for transmission but not yet delivered (or
  /// dropped) — an instantaneous network-occupancy gauge for the timeline
  /// sampler. Includes per-message overhead bytes.
  [[nodiscard]] std::uint64_t inflight_wire_bytes() const noexcept {
    return inflight_wire_bytes_;
  }
  [[nodiscard]] std::uint64_t node_tx_bytes(int node) const {
    return endpoints_.at(static_cast<std::size_t>(node))->tx_bytes;
  }
  [[nodiscard]] std::uint64_t node_rx_bytes(int node) const {
    return endpoints_.at(static_cast<std::size_t>(node))->rx_bytes;
  }

 private:
  struct Endpoint {
    explicit Endpoint(sim::Scheduler& sched)
        : tx(sched, 1), rx(sched, 1), mailbox(sched) {}
    sim::Resource tx;
    sim::Resource rx;
    sim::Mailbox mailbox;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_bytes = 0;
  };

  Endpoint& endpoint(int node) {
    return *endpoints_.at(static_cast<std::size_t>(node));
  }

  /// `extra_delay` postpones delivery of the final packet (fault
  /// injection: delay/reorder); `deliver == false` transmits the message
  /// normally but discards it at the receiver (drop/outage — the sender
  /// still pays for the bytes, as with a real lost datagram).
  sim::Task<void> send_impl(int src, int dst, Box<sim::Message> boxed,
                            SimTime extra_delay, bool deliver);

  /// Detached transmission of a fault-injected duplicate copy.
  sim::Fire duplicate_send(int src, int dst, Box<sim::Message> boxed);

  /// Per-packet receive side: latency, rx-link occupancy, then (for the
  /// final packet of a message, which carries the boxed payload) delivery.
  /// `net_span` is the in-flight transmission span, closed at delivery.
  sim::Fire receive_packet(int dst, SimTime rx_hold, Box<sim::Message> boxed,
                           std::uint64_t net_span, SimTime extra_delay,
                           bool deliver);

  sim::Scheduler* sched_;
  NetConfig config_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::unique_ptr<sim::Resource> fabric_;  ///< shared bisection stage (optional)
  sim::Tracer* tracer_ = nullptr;
  FaultPlan* fault_ = nullptr;
  obs::Observability* obs_ = nullptr;
  obs::Counter* obs_messages_ = nullptr;   ///< net_messages_total
  obs::Counter* obs_wire_bytes_ = nullptr; ///< net_wire_bytes_total
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_wire_bytes_ = 0;
  std::uint64_t inflight_wire_bytes_ = 0;
};

}  // namespace dtio::net
