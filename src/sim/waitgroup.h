// A join primitive for fan-out/fan-in over Fire coroutines: add() once per
// outstanding task, done() as each finishes, and a single joiner parks in
// wait() until the count drains to zero. Tasks are lazy (started on
// co_await), so awaiting them sequentially would serialise the fan-out;
// detached Fires plus a WaitGroup keep them concurrent while still giving
// the spawner a completion point.
#pragma once

#include <cassert>
#include <coroutine>

#include "sim/scheduler.h"

namespace dtio::sim {

class WaitGroup {
 public:
  explicit WaitGroup(Scheduler& sched) noexcept : sched_(&sched) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(int n = 1) noexcept { pending_ += n; }

  /// Called by each task on completion. Resumes the joiner (through the
  /// event queue, at the current time) when the last task finishes.
  void done() {
    assert(pending_ > 0 && "WaitGroup::done without matching add");
    if (--pending_ == 0 && waiter_) {
      auto h = waiter_;
      waiter_ = nullptr;
      sched_->schedule_at(sched_->now(), h);
    }
  }

  struct Awaiter {
    WaitGroup* wg;
    [[nodiscard]] bool await_ready() const noexcept {
      return wg->pending_ == 0;
    }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      assert(!wg->waiter_ && "WaitGroup supports a single joiner");
      wg->waiter_ = h;
    }
    void await_resume() const noexcept {}
  };

  /// Await all outstanding tasks. At most one joiner at a time.
  [[nodiscard]] Awaiter wait() noexcept { return Awaiter{this}; }

  [[nodiscard]] int pending() const noexcept { return pending_; }

 private:
  Scheduler* sched_;
  int pending_ = 0;
  std::coroutine_handle<> waiter_;
};

}  // namespace dtio::sim
