// Tagged mailboxes: the message-delivery endpoint of each simulated node.
//
// Matching follows MPI semantics: a receive names a (source, tag) pair,
// either of which may be a wildcard, and matches the earliest queued
// message satisfying the filter. Delivery and receipt are decoupled —
// the network layer calls deliver() when the last packet of a message
// arrives; receivers park in recv() until a match exists.
#pragma once

#include <any>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "sim/scheduler.h"

namespace dtio::sim {

inline constexpr int kAnySource = -1;
inline constexpr std::uint64_t kAnyTag = std::numeric_limits<std::uint64_t>::max();

/// A delivered message. `wire_bytes` is the simulated on-the-wire size
/// (headers + descriptors + data), which may exceed the in-memory size of
/// `body`; the cost model charges for wire_bytes, correctness uses body.
struct Message {
  int src = kAnySource;
  std::uint64_t tag = 0;
  std::uint64_t wire_bytes = 0;
  /// Observability annotations (0 = untraced): the trace this message
  /// belongs to and the sender-side span it continues. Carried so the
  /// network layer can parent its transmission spans; no semantic effect.
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  /// Observability phase tag (obs::Phase as uint8_t; 0 = untyped). Stamped
  /// by the sender so the network can type its transmission span without a
  /// net -> pfs dependency. No semantic effect.
  std::uint8_t phase = 0;
  /// Simulated time this message reached the destination mailbox, stamped
  /// by Mailbox::deliver(); -1 until delivered. Receivers use it to measure
  /// queue-wait. No semantic effect.
  SimTime delivered_at = -1;
  std::any body;

  Message() = default;
  Message(int src_, std::uint64_t tag_, std::uint64_t wire_bytes_,
          std::any body_) noexcept
      : src(src_), tag(tag_), wire_bytes(wire_bytes_), body(std::move(body_)) {}
  // The move operations are user-provided on purpose: the GCC in use
  // miscompiles by-value coroutine parameters whose move constructor is
  // implicitly defined (double destruction of the parameter object; see
  // common/box.h). A user-provided move makes Message safe to pass by
  // value into any coroutine, including as a prvalue.
  Message(Message&& other) noexcept
      : src(other.src),
        tag(other.tag),
        wire_bytes(other.wire_bytes),
        trace(other.trace),
        span(other.span),
        phase(other.phase),
        delivered_at(other.delivered_at),
        body(std::move(other.body)) {}
  Message& operator=(Message&& other) noexcept {
    src = other.src;
    tag = other.tag;
    wire_bytes = other.wire_bytes;
    trace = other.trace;
    span = other.span;
    phase = other.phase;
    delivered_at = other.delivered_at;
    body = std::move(other.body);
    return *this;
  }
  Message(const Message&) = default;
  Message& operator=(const Message&) = default;
  ~Message() = default;

  template <typename T>
  [[nodiscard]] const T& as() const {
    const T* p = std::any_cast<T>(&body);
    assert(p != nullptr && "message body type mismatch");
    return *p;
  }
  template <typename T>
  [[nodiscard]] T take() {
    T* p = std::any_cast<T>(&body);
    assert(p != nullptr && "message body type mismatch");
    return std::move(*p);
  }
};

class Mailbox {
 public:
  explicit Mailbox(Scheduler& sched) noexcept : sched_(&sched) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  struct RecvAwaiter {
    Mailbox* mailbox;
    int src_filter;
    std::uint64_t tag_filter;
    Message message;

    bool await_ready() {
      return mailbox->try_take(src_filter, tag_filter, message);
    }
    void await_suspend(std::coroutine_handle<> h) {
      mailbox->waiters_.push_back(Waiter{src_filter, tag_filter, &message, h});
    }
    Message await_resume() noexcept { return std::move(message); }
  };

  /// Await a message matching (src, tag); wildcards allowed.
  [[nodiscard]] RecvAwaiter recv(int src = kAnySource,
                                 std::uint64_t tag = kAnyTag) {
    return RecvAwaiter{this, src, tag, {}};
  }

  struct TimedRecvAwaiter {
    Mailbox* mailbox;
    int src_filter;
    std::uint64_t tag_filter;
    SimTime timeout;
    Message message;
    bool expired = false;

    bool await_ready() {
      return mailbox->try_take(src_filter, tag_filter, message);
    }
    void await_suspend(std::coroutine_handle<> h) {
      const std::uint64_t id = ++mailbox->next_waiter_id_;
      mailbox->waiters_.push_back(
          Waiter{src_filter, tag_filter, &message, h, id, &expired});
      Mailbox* mb = mailbox;
      mb->sched_->schedule_call(mb->sched_->now() + timeout,
                                [mb, id] { mb->expire_waiter(id); });
    }
    std::optional<Message> await_resume() noexcept {
      if (expired) return std::nullopt;
      return std::move(message);
    }
  };

  /// recv() with a deadline in simulated time: resumes with the matching
  /// message, or with nullopt once `timeout` elapses without a match. The
  /// timer always fires (no cancellation) but is a no-op if the waiter
  /// already matched — expiry is looked up by id, never by address.
  /// Deadline-exact arrivals lose: the expiry callback was scheduled when
  /// the waiter parked, so at the deadline tick it runs before a deliver
  /// scheduled later for the same instant.
  [[nodiscard]] TimedRecvAwaiter recv_for(int src, std::uint64_t tag,
                                          SimTime timeout) {
    return TimedRecvAwaiter{this, src, tag, timeout, {}, false};
  }

  struct TimedRecv2Awaiter {
    Mailbox* mailbox;
    int src_filter;
    std::uint64_t tag_a;
    std::uint64_t tag_b;
    SimTime timeout;
    Message message;
    bool expired = false;

    bool await_ready() {
      return mailbox->try_take(src_filter, tag_a, message) ||
             mailbox->try_take(src_filter, tag_b, message);
    }
    void await_suspend(std::coroutine_handle<> h) {
      const std::uint64_t id = ++mailbox->next_waiter_id_;
      mailbox->waiters_.push_back(
          Waiter{src_filter, tag_a, &message, h, id, &expired, tag_b, true});
      Mailbox* mb = mailbox;
      mb->sched_->schedule_call(mb->sched_->now() + timeout,
                                [mb, id] { mb->expire_waiter(id); });
    }
    std::optional<Message> await_resume() noexcept {
      if (expired) return std::nullopt;
      return std::move(message);
    }
  };

  /// recv_for() matching EITHER of two tags from `src` — first delivery
  /// wins; inspect the returned Message's `tag` to see which. Built for
  /// hedged requests: the primary and the hedge carry distinct reply tags
  /// and one receive awaits both, so the losing reply parks unclaimed
  /// instead of being mistaken for anything.
  [[nodiscard]] TimedRecv2Awaiter recv2_for(int src, std::uint64_t tag_a,
                                            std::uint64_t tag_b,
                                            SimTime timeout) {
    return TimedRecv2Awaiter{this, src, tag_a, tag_b, timeout, {}, false};
  }

  /// Hand a fully-arrived message to this mailbox. If a parked receiver
  /// matches, it is resumed through the event queue at the current time.
  void deliver(Message msg) {
    msg.delivered_at = sched_->now();
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (matches(msg, it->src_filter, it->tag_filter) ||
          (it->has_alt_tag && matches(msg, it->src_filter, it->tag_alt))) {
        *it->slot = std::move(msg);
        auto h = it->handle;
        waiters_.erase(it);
        sched_->schedule_at(sched_->now(), h);
        return;
      }
    }
    queued_bytes_ += msg.wire_bytes;
    queue_.push_back(std::move(msg));
  }

  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }
  /// Wire bytes of the queued (undelivered) backlog — what a server's
  /// admission control weighs against ServerConfig::max_queued_bytes.
  [[nodiscard]] std::uint64_t queued_bytes() const noexcept {
    return queued_bytes_;
  }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

  /// Discard every queued (undelivered) message; parked receivers are left
  /// alone. Returns the number discarded. Used by server crash simulation.
  std::size_t clear_queue() noexcept {
    const std::size_t n = queue_.size();
    queue_.clear();
    queued_bytes_ = 0;
    return n;
  }

 private:
  struct Waiter {
    int src_filter;
    std::uint64_t tag_filter;
    Message* slot;
    std::coroutine_handle<> handle;
    std::uint64_t id = 0;        // nonzero only for timed waiters
    bool* expired = nullptr;     // set before resuming on timeout
    std::uint64_t tag_alt = 0;   // second acceptable tag (hedged receives)
    bool has_alt_tag = false;
  };

  /// Timer callback for a timed waiter: if it is still parked, mark it
  /// expired and resume it empty-handed. No-op when the waiter already
  /// matched (its id is gone from the list).
  void expire_waiter(std::uint64_t id) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (it->id != id) continue;
      *it->expired = true;
      auto h = it->handle;
      waiters_.erase(it);
      sched_->schedule_at(sched_->now(), h);
      return;
    }
  }

  static bool matches(const Message& m, int src_filter,
                      std::uint64_t tag_filter) noexcept {
    return (src_filter == kAnySource || src_filter == m.src) &&
           (tag_filter == kAnyTag || tag_filter == m.tag);
  }

  bool try_take(int src_filter, std::uint64_t tag_filter, Message& out) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, src_filter, tag_filter)) {
        out = std::move(*it);
        queued_bytes_ -= out.wire_bytes;
        queue_.erase(it);
        return true;
      }
    }
    return false;
  }

  Scheduler* sched_;
  std::deque<Message> queue_;
  std::deque<Waiter> waiters_;
  std::uint64_t next_waiter_id_ = 0;
  std::uint64_t queued_bytes_ = 0;
};

}  // namespace dtio::sim
