// Event tracing: an optional observer that records what the simulated
// cluster did and when — message sends/deliveries, server request
// handling — for debugging protocol behaviour and for post-processing
// (the CSV dump loads straight into a spreadsheet or pandas).
//
// Tracing is off unless a Tracer is attached; the hot paths pay one
// pointer test when disabled.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace dtio::sim {

struct TraceEvent {
  SimTime time = 0;
  std::string_view kind;    ///< "send", "deliver", "request", "reply", ...
  int node = -1;            ///< where it happened
  int peer = -1;            ///< other endpoint (-1 when n/a)
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
  std::string_view detail;  ///< e.g. the op name; must outlive the tracer
};

class Tracer {
 public:
  /// `capacity` bounds memory; older events are dropped once full (the
  /// count keeps rising so truncation is visible).
  explicit Tracer(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  void record(TraceEvent event) {
    ++total_;
    if (events_.size() == capacity_) {
      events_[next_slot_] = event;
      next_slot_ = (next_slot_ + 1) % capacity_;
    } else {
      events_.push_back(event);
    }
  }

  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  [[nodiscard]] bool truncated() const noexcept {
    return total_ > events_.size();
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  /// "time_us,kind,node,peer,tag,bytes,detail" rows, oldest first.
  void dump_csv(std::ostream& out) const;

 private:
  std::size_t capacity_;
  std::size_t next_slot_ = 0;
  std::uint64_t total_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace dtio::sim
