// The discrete-event scheduler at the heart of the simulated cluster.
//
// Events are (time, sequence) ordered; ties resolve in insertion order so
// a given program is bit-for-bit deterministic. All cross-process resumption
// (resource grants, message delivery, barrier release) goes through this
// queue rather than resuming coroutines inline, which keeps stacks shallow
// and makes event ordering the single source of truth for interleaving.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/fire.h"
#include "sim/task.h"

namespace dtio::sim {

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Resume `h` at absolute simulated time `t` (>= now).
  void schedule_at(SimTime t, std::coroutine_handle<> h);

  /// Run an arbitrary callback at absolute time `t`.
  void schedule_call(SimTime t, std::function<void()> fn);

  /// Telemetry side-channel: run `fn` once the simulated clock first
  /// reaches `t`, BEFORE the next regular event at or after `t`. Unlike
  /// schedule_call, telemetry callbacks consume no event-queue sequence
  /// numbers and do not count toward events_processed(), so attaching a
  /// periodic sampler leaves the simulation's event sequence and every
  /// reported event count bit-identical ("record, never perturb"). The
  /// callback MUST be a pure observer: it may read simulation state and
  /// schedule further telemetry, but never resume coroutines or schedule
  /// regular events. Pending telemetry past the last regular event never
  /// fires (the run is over; there is nothing left to observe).
  void schedule_telemetry(SimTime t, std::function<void()> fn);

  /// Awaitable pause of `dt` simulated time. dt == 0 still round-trips
  /// through the event queue, yielding to same-time events queued earlier.
  struct DelayAwaiter {
    Scheduler* sched;
    SimTime dt;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      sched->schedule_at(sched->now_ + dt, h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] DelayAwaiter delay(SimTime dt) noexcept { return {this, dt}; }

  /// Register a top-level simulated process; it starts at the current time.
  /// The scheduler owns the coroutine frame from here on.
  void spawn(Task<void> process);

  /// Start a self-destroying Fire coroutine at the current time.
  void start(Fire fire);

  /// Process events until the queue is empty, then rethrow the first
  /// exception that escaped any spawned process.
  void run();

  /// Number of processes spawned that have run to completion.
  [[nodiscard]] std::size_t processes_finished() const noexcept;
  [[nodiscard]] std::size_t processes_spawned() const noexcept {
    return processes_.size();
  }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::coroutine_handle<> handle;   // exactly one of handle/fn is set
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct TelemetryEvent {
    SimTime time;
    std::uint64_t seq;  ///< separate counter: never touches next_seq_
    std::function<void()> fn;
  };
  struct TelemetryLater {
    bool operator()(const TelemetryEvent& a,
                    const TelemetryEvent& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void check_process_exceptions();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_telemetry_seq_ = 0;
  std::priority_queue<TelemetryEvent, std::vector<TelemetryEvent>,
                      TelemetryLater>
      telemetry_;
  std::vector<std::coroutine_handle<Task<void>::promise_type>> processes_;
};

}  // namespace dtio::sim
