#include "sim/scheduler.h"

#include <cassert>
#include <stdexcept>

namespace dtio::sim {

Scheduler::~Scheduler() {
  // Destroy remaining frames (processes parked on never-delivered recvs at
  // teardown, or finished frames suspended at final_suspend).
  for (auto h : processes_) {
    if (h) h.destroy();
  }
}

void Scheduler::schedule_at(SimTime t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule into the simulated past");
  queue_.push(Event{t, next_seq_++, h, nullptr});
}

void Scheduler::schedule_call(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the simulated past");
  queue_.push(Event{t, next_seq_++, nullptr, std::move(fn)});
}

void Scheduler::schedule_telemetry(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the simulated past");
  telemetry_.push(TelemetryEvent{t, next_telemetry_seq_++, std::move(fn)});
}

void Scheduler::spawn(Task<void> process) {
  auto h = process.release();
  assert(h && "spawn of an empty task");
  processes_.push_back(h);
  schedule_at(now_, h);
}

void Scheduler::start(Fire fire) { schedule_at(now_, fire.handle()); }

void Scheduler::run() {
  while (!queue_.empty()) {
    // Telemetry due at or before the next regular event observes the
    // simulation between events, at its own timestamp. Pure observation:
    // running it cannot change the regular queue, so the event sequence
    // is identical with or without telemetry attached. A telemetry
    // callback may schedule the next sample (periodic samplers), which
    // the loop picks up immediately if still due.
    const SimTime next_time = queue_.top().time;
    while (!telemetry_.empty() && telemetry_.top().time <= next_time) {
      TelemetryEvent t = std::move(const_cast<TelemetryEvent&>(
          telemetry_.top()));
      telemetry_.pop();
      now_ = t.time;
      t.fn();
    }
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    if (ev.handle) {
      ev.handle.resume();
    } else {
      ev.fn();
    }
  }
  check_process_exceptions();
}

void Scheduler::check_process_exceptions() {
  if (detail::g_fire_exception) {
    auto exc = detail::g_fire_exception;
    detail::g_fire_exception = nullptr;
    std::rethrow_exception(exc);
  }
  for (auto h : processes_) {
    if (h && h.done() && h.promise().exception) {
      auto exc = h.promise().exception;
      h.promise().exception = nullptr;
      std::rethrow_exception(exc);
    }
  }
}

std::size_t Scheduler::processes_finished() const noexcept {
  std::size_t n = 0;
  for (auto h : processes_) {
    if (h && h.done()) ++n;
  }
  return n;
}

}  // namespace dtio::sim
