// Reusable synchronization barrier for groups of simulated processes.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <vector>

#include "sim/scheduler.h"

namespace dtio::sim {

/// All `parties` processes must arrive before any proceeds. Reusable:
/// a generation counter separates consecutive barrier episodes.
class Barrier {
 public:
  Barrier(Scheduler& sched, std::size_t parties) noexcept
      : sched_(&sched), parties_(parties) {
    assert(parties >= 1);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  struct ArriveAwaiter {
    Barrier* barrier;
    bool await_ready() {
      if (barrier->arrived_ + 1 == barrier->parties_) {
        barrier->release_all();
        return true;  // last arrival passes straight through
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++barrier->arrived_;
      barrier->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] ArriveAwaiter arrive_and_wait() noexcept { return {this}; }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

 private:
  void release_all() {
    for (auto h : waiters_) sched_->schedule_at(sched_->now(), h);
    waiters_.clear();
    arrived_ = 0;
    ++generation_;
  }

  Scheduler* sched_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace dtio::sim
