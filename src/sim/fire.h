// Fire-and-forget coroutines whose frames self-destroy on completion.
//
// The network layer spawns one of these per packet in flight; with
// millions of packets per run, retaining frames (as Scheduler::spawn does
// for long-lived processes) would exhaust memory. A Fire frame is owned by
// nobody: it destroys itself at final_suspend. Exceptions escaping a Fire
// body are parked in a thread-local slot that Scheduler::run rethrows.
#pragma once

#include <coroutine>
#include <exception>

namespace dtio::sim {

namespace detail {
/// Exception that escaped a Fire coroutine, pending rethrow by the
/// scheduler loop (the frame that threw is already gone).
inline thread_local std::exception_ptr g_fire_exception;
}  // namespace detail

class Fire {
 public:
  struct promise_type {
    Fire get_return_object() noexcept {
      return Fire{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_never final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept {
      if (!detail::g_fire_exception) {
        detail::g_fire_exception = std::current_exception();
      }
    }
  };

  /// Non-owning: the frame manages its own lifetime once started.
  [[nodiscard]] std::coroutine_handle<> handle() const noexcept {
    return handle_;
  }

 private:
  explicit Fire(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace dtio::sim
