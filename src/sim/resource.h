// FIFO-fair counted resources: disks, NIC links, server CPUs.
//
// A Resource with capacity 1 serializes its users in simulated time; the
// `use(hold)` helper models the common "occupy the device for a duration"
// pattern (e.g. a 64 KiB packet occupies a link for bytes/bandwidth).
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>

#include "common/units.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace dtio::sim {

class Resource {
 public:
  Resource(Scheduler& sched, std::size_t capacity = 1)
      : sched_(&sched), capacity_(capacity) {
    assert(capacity >= 1);
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  struct AcquireAwaiter {
    Resource* res;
    bool await_ready() const noexcept {
      if (res->in_use_ < res->capacity_ && res->waiters_.empty()) {
        res->note_usage_change(+1);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      res->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// co_await res.acquire(); ... res.release();
  [[nodiscard]] AcquireAwaiter acquire() noexcept { return {this}; }

  /// Release one unit. If a waiter exists, ownership transfers to it (the
  /// waiter resumes through the event queue at the current time).
  void release() {
    assert(in_use_ > 0);
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // in_use_ stays constant: the unit moves straight to the waiter.
      sched_->schedule_at(sched_->now(), h);
    } else {
      note_usage_change(-1);
    }
  }

  /// Acquire, hold for `hold` simulated time, release.
  Task<void> use(SimTime hold) {
    co_await acquire();
    co_await sched_->delay(hold);
    release();
  }

  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

  /// Integral of in_use over time, for utilization reporting:
  /// utilization = busy_integral / (elapsed * capacity).
  [[nodiscard]] double busy_integral() const noexcept {
    return busy_integral_ +
           static_cast<double>(in_use_) *
               static_cast<double>(sched_->now() - last_change_);
  }

 private:
  void note_usage_change(int delta) noexcept {
    const SimTime now = sched_->now();
    busy_integral_ += static_cast<double>(in_use_) *
                      static_cast<double>(now - last_change_);
    last_change_ = now;
    in_use_ = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(in_use_) +
                                       delta);
  }

  Scheduler* sched_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
  double busy_integral_ = 0.0;
  SimTime last_change_ = 0;
};

/// RAII-style scoped hold for code with multiple exit paths.
class ScopedResource {
 public:
  explicit ScopedResource(Resource& res) noexcept : res_(&res) {}
  ScopedResource(const ScopedResource&) = delete;
  ScopedResource& operator=(const ScopedResource&) = delete;
  ~ScopedResource() {
    if (held_) res_->release();
  }

  /// Must be awaited exactly once before the guard owns a unit.
  [[nodiscard]] Resource::AcquireAwaiter acquire() noexcept {
    held_ = true;
    return res_->acquire();
  }

 private:
  Resource* res_;
  bool held_ = false;
};

}  // namespace dtio::sim
