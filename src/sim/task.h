// Coroutine task types for the discrete-event simulator.
//
// A simulated process (PVFS client, I/O server, aggregator, ...) is a
// coroutine returning Task<void>; helper operations that need to block in
// simulated time (network transfer, disk access, barrier) are coroutines
// too and are awaited with `co_await`. Awaiting a Task starts it
// immediately via symmetric transfer and resumes the awaiter when the
// child finishes — there is no real concurrency, all interleaving happens
// through the Scheduler's event queue.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace dtio::sim {

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    // Resume whoever co_awaited us; top-level tasks have no continuation
    // and simply return control to the scheduler loop.
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine producing a T (or nothing). Move-only; owns
/// its coroutine frame. Award with `co_await` from another task, or hand to
/// Scheduler::spawn for top-level processes.
template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;  // start the child now
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    assert(p.value.has_value() && "Task<T> finished without a value");
    return std::move(*p.value);
  }

  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() noexcept {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() const noexcept {}
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    handle_.promise().continuation = cont;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

  [[nodiscard]] std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  /// Releases ownership of the frame (used by Scheduler::spawn, which then
  /// manages the frame's lifetime itself).
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, nullptr);
  }

 private:
  friend struct promise_type;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}

  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace dtio::sim
