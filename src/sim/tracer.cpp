#include "sim/tracer.h"

namespace dtio::sim {

void Tracer::dump_csv(std::ostream& out) const {
  out << "time_us,kind,node,peer,tag,bytes,detail\n";
  // The ring keeps [next_slot_, end) + [0, next_slot_) in age order once
  // wrapped; before wrapping, insertion order is age order.
  const auto emit = [&](const TraceEvent& e) {
    out << static_cast<double>(e.time) / 1000.0 << ',' << e.kind << ','
        << e.node << ',' << e.peer << ',' << e.tag << ',' << e.bytes << ','
        << e.detail << '\n';
  };
  if (truncated()) {
    for (std::size_t i = next_slot_; i < events_.size(); ++i) emit(events_[i]);
    for (std::size_t i = 0; i < next_slot_; ++i) emit(events_[i]);
  } else {
    for (const TraceEvent& e : events_) emit(e);
  }
}

}  // namespace dtio::sim
