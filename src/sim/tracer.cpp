#include "sim/tracer.h"

#include <string_view>

namespace dtio::sim {

namespace {

// RFC 4180: fields containing commas, quotes, or line breaks are wrapped
// in double quotes with embedded quotes doubled; plain fields stay bare
// so the common case remains grep-able.
void emit_field(std::ostream& out, std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    out << field;
    return;
  }
  out << '"';
  for (const char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void Tracer::dump_csv(std::ostream& out) const {
  out << "time_us,kind,node,peer,tag,bytes,detail\n";
  // The ring keeps [next_slot_, end) + [0, next_slot_) in age order once
  // wrapped; before wrapping, insertion order is age order.
  const auto emit = [&](const TraceEvent& e) {
    out << static_cast<double>(e.time) / 1000.0 << ',';
    emit_field(out, e.kind);
    out << ',' << e.node << ',' << e.peer << ',' << e.tag << ',' << e.bytes
        << ',';
    emit_field(out, e.detail);
    out << '\n';
  };
  if (truncated()) {
    for (std::size_t i = next_slot_; i < events_.size(); ++i) emit(events_[i]);
    for (std::size_t i = 0; i < next_slot_; ++i) emit(events_[i]);
  } else {
    for (const TraceEvent& e : events_) emit(e);
  }
}

}  // namespace dtio::sim
