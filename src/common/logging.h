// Minimal leveled logging. Off by default so benches and tests stay quiet;
// enable with DTIO_LOG=debug (or via set_log_level) when tracing the
// simulated protocol.
#pragma once

#include <sstream>
#include <string_view>

namespace dtio {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Reads DTIO_LOG from the environment ("debug"/"info"/"warn"/"error").
void init_logging_from_env();

namespace detail {
void emit_log(LogLevel level, std::string_view file, int line,
              std::string_view message);
}

#define DTIO_LOG(level, expr)                                            \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::dtio::log_level())) { \
      std::ostringstream dtio_log_oss;                                   \
      dtio_log_oss << expr;                                              \
      ::dtio::detail::emit_log(level, __FILE__, __LINE__,                \
                               dtio_log_oss.str());                      \
    }                                                                    \
  } while (false)

#define DTIO_DEBUG(expr) DTIO_LOG(::dtio::LogLevel::kDebug, expr)
#define DTIO_INFO(expr) DTIO_LOG(::dtio::LogLevel::kInfo, expr)
#define DTIO_WARN(expr) DTIO_LOG(::dtio::LogLevel::kWarn, expr)
#define DTIO_ERROR(expr) DTIO_LOG(::dtio::LogLevel::kError, expr)

}  // namespace dtio
