// Minimal leveled logging. Off by default so benches and tests stay quiet;
// enable with DTIO_LOG=debug (or via set_log_level) when tracing the
// simulated protocol. When a sim clock is attached (set_log_sim_clock),
// every line carries the current simulated time, so log output lines up
// with traces and CSV dumps.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace dtio {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// "debug"/"info"/"warn"/"error"/"off" -> level; false on anything else.
bool parse_log_level(std::string_view name, LogLevel& out) noexcept;

/// Reads DTIO_LOG from the environment; unknown values leave the level
/// unchanged and print a warning naming the accepted spellings.
void init_logging_from_env();

/// Attach a simulated-time source (typically the scheduler's clock);
/// log lines gain a "t=<us>us" field. Pass nullptr to detach — required
/// before the clock's owner dies.
void set_log_sim_clock(std::function<std::int64_t()> now_ns);

namespace detail {
/// The exact line emit_log writes (sans trailing newline); split out so
/// tests can check formatting without capturing stderr.
std::string format_log_line(LogLevel level, std::string_view file, int line,
                            std::string_view message);
void emit_log(LogLevel level, std::string_view file, int line,
              std::string_view message);
}  // namespace detail

#define DTIO_LOG(level, expr)                                            \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::dtio::log_level())) { \
      std::ostringstream dtio_log_oss;                                   \
      dtio_log_oss << expr;                                              \
      ::dtio::detail::emit_log(level, __FILE__, __LINE__,                \
                               dtio_log_oss.str());                      \
    }                                                                    \
  } while (false)

#define DTIO_DEBUG(expr) DTIO_LOG(::dtio::LogLevel::kDebug, expr)
#define DTIO_INFO(expr) DTIO_LOG(::dtio::LogLevel::kInfo, expr)
#define DTIO_WARN(expr) DTIO_LOG(::dtio::LogLevel::kWarn, expr)
#define DTIO_ERROR(expr) DTIO_LOG(::dtio::LogLevel::kError, expr)

}  // namespace dtio
