// CRC-32 (IEEE 802.3 polynomial) used by tests and examples to verify that
// data survives round trips through the simulated file-system stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dtio {

/// Incremental CRC-32; pass the previous result as `seed` to chain calls.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0) noexcept;

}  // namespace dtio
