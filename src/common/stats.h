// Instrumentation counters backing Tables 1-3 of the paper: per-client
// desired data, data actually accessed at servers, number of file-system
// I/O operations, and data resent between clients (two-phase I/O).
#pragma once

#include <cstdint>
#include <string>

namespace dtio {

/// Counters accumulated by one client (or one collective participant)
/// during an access-method run. Every I/O method updates these through the
/// client/file-system plumbing, so the table benches just read them out.
struct IoStats {
  std::uint64_t desired_bytes = 0;    ///< bytes the application asked for
  std::uint64_t accessed_bytes = 0;   ///< bytes moved between servers' storage and the network on this client's behalf
  std::uint64_t io_ops = 0;           ///< file-system-level I/O operations issued
  std::uint64_t resent_bytes = 0;     ///< bytes exchanged client<->client (two-phase redistribution)
  std::uint64_t request_bytes = 0;    ///< request-descriptor payload (list-I/O region lists, dataloops)
  std::uint64_t regions_client = 0;   ///< offset-length regions produced on the client
  std::uint64_t regions_server = 0;   ///< offset-length regions produced on servers for this client
  std::uint64_t requests_sent = 0;    ///< network requests to I/O servers

  IoStats& operator+=(const IoStats& other) noexcept {
    desired_bytes += other.desired_bytes;
    accessed_bytes += other.accessed_bytes;
    io_ops += other.io_ops;
    resent_bytes += other.resent_bytes;
    request_bytes += other.request_bytes;
    regions_client += other.regions_client;
    regions_server += other.regions_server;
    requests_sent += other.requests_sent;
    return *this;
  }

  void reset() noexcept { *this = IoStats{}; }

  /// One-line rendering for logs and EXPERIMENTS.md capture.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace dtio
