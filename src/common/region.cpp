#include "common/region.h"

#include <algorithm>

namespace dtio {

std::int64_t total_length(std::span<const Region> regions) noexcept {
  std::int64_t total = 0;
  for (const Region& r : regions) total += r.length;
  return total;
}

bool regions_sorted_disjoint(std::span<const Region> regions) noexcept {
  for (std::size_t i = 1; i < regions.size(); ++i) {
    if (regions[i].offset < regions[i - 1].end()) return false;
  }
  return true;
}

std::size_t coalesce_adjacent(std::vector<Region>& regions) noexcept {
  if (regions.size() < 2) return 0;
  std::size_t merges = 0;
  std::size_t out = 0;
  for (std::size_t i = 1; i < regions.size(); ++i) {
    if (regions[i].offset == regions[out].end()) {
      regions[out].length += regions[i].length;
      ++merges;
    } else {
      regions[++out] = regions[i];
    }
  }
  regions.resize(out + 1);
  return merges;
}

void intersect_range(std::span<const Region> regions, std::int64_t lo,
                     std::int64_t hi, std::vector<Region>& out) {
  for (const Region& r : regions) {
    const std::int64_t begin = std::max(r.offset, lo);
    const std::int64_t end = std::min(r.end(), hi);
    if (begin < end) out.push_back({begin, end - begin});
  }
}

Region bounding_hull(std::span<const Region> regions) noexcept {
  if (regions.empty()) return {0, 0};
  std::int64_t lo = regions.front().offset;
  std::int64_t hi = regions.front().end();
  for (const Region& r : regions) {
    lo = std::min(lo, r.offset);
    hi = std::max(hi, r.end());
  }
  return {lo, hi - lo};
}

std::vector<Region> region_union(std::vector<Region> regions) {
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) {
              return a.offset < b.offset;
            });
  std::vector<Region> out;
  for (const Region& r : regions) {
    if (r.length <= 0) continue;
    if (!out.empty() && r.offset <= out.back().end()) {
      out.back().length =
          std::max(out.back().end(), r.end()) - out.back().offset;
    } else {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace dtio
