#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace dtio {

SimTime transfer_time(std::uint64_t bytes, double bytes_per_second) noexcept {
  if (bytes == 0 || bytes_per_second <= 0.0) return 0;
  const double seconds = static_cast<double>(bytes) / bytes_per_second;
  return static_cast<SimTime>(std::ceil(seconds * static_cast<double>(kSecond)));
}

namespace {

std::string format_scaled(double value, const char* const* suffixes,
                          int n_suffixes, double step) {
  int idx = 0;
  while (value >= step && idx + 1 < n_suffixes) {
    value /= step;
    ++idx;
  }
  char buf[64];
  if (value >= 100.0 || idx == 0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, suffixes[idx]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, suffixes[idx]);
  }
  return buf;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  static const char* const kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return format_scaled(static_cast<double>(bytes), kSuffixes, 5, 1024.0);
}

std::string format_bandwidth(double bytes_per_second) {
  static const char* const kSuffixes[] = {"B/s", "KiB/s", "MiB/s", "GiB/s"};
  return format_scaled(bytes_per_second, kSuffixes, 4, 1024.0);
}

}  // namespace dtio
