// Byte-size and time-unit helpers shared across the simulator and benches.
#pragma once

#include <cstdint>
#include <string>

namespace dtio {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Simulated time is kept in integer nanoseconds to make event ordering
/// exact and runs reproducible (no floating-point accumulation drift).
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Seconds as a double, for bandwidth math in benches.
inline constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Transfer time of `bytes` at `bytes_per_second`, rounded up to whole ns.
SimTime transfer_time(std::uint64_t bytes, double bytes_per_second) noexcept;

/// "2.25 MiB" / "768 B" style rendering for tables.
std::string format_bytes(std::uint64_t bytes);

/// "12.3 MiB/s" rendering for figure output.
std::string format_bandwidth(double bytes_per_second);

}  // namespace dtio
