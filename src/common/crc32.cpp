#include "common/crc32.h"

#include <array>

namespace dtio {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace dtio
