#include "common/status.h"

namespace dtio {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{status_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dtio
