// Deterministic PRNG (xoshiro256**) for reproducible workload generation
// and property tests. std::mt19937_64 would also work, but xoshiro keeps
// state tiny and seeding trivially splittable across simulated processes.
#pragma once

#include <cstdint>

namespace dtio {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// splitmix64 expansion of the seed, so nearby seeds give unrelated streams.
  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Derive a per-component seed from the single run seed: splitmix-style
/// finalizer so (seed, salt) pairs give unrelated streams. Use this instead
/// of `seed + salt` so nearby salts (e.g. consecutive ranks) decorrelate.
constexpr std::uint64_t mix_seed(std::uint64_t seed,
                                 std::uint64_t salt) noexcept {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The single run seed: `DTIO_SEED` from the environment if set and
/// parseable, otherwise `fallback`. Chaos runs and randomized tests derive
/// all their streams from this one number (via mix_seed) so a whole run
/// reproduces from one knob.
std::uint64_t run_seed(std::uint64_t fallback = 1) noexcept;

}  // namespace dtio
