#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dtio {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void init_logging_from_env() {
  const char* env = std::getenv("DTIO_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  else if (std::strcmp(env, "off") == 0) set_log_level(LogLevel::kOff);
}

namespace detail {

void emit_log(LogLevel level, std::string_view file, int line,
              std::string_view message) {
  // Trim the path to the basename to keep lines short.
  const std::size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  std::fprintf(stderr, "[%s %.*s:%d] %.*s\n", level_name(level),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace dtio
