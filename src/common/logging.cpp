#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace dtio {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::function<std::int64_t()> g_sim_clock;  // null = wall-clock-less lines

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

bool parse_log_level(std::string_view name, LogLevel& out) noexcept {
  if (name == "debug") out = LogLevel::kDebug;
  else if (name == "info") out = LogLevel::kInfo;
  else if (name == "warn") out = LogLevel::kWarn;
  else if (name == "error") out = LogLevel::kError;
  else if (name == "off") out = LogLevel::kOff;
  else return false;
  return true;
}

void init_logging_from_env() {
  const char* env = std::getenv("DTIO_LOG");
  if (env == nullptr) return;
  LogLevel level;
  if (parse_log_level(env, level)) {
    set_log_level(level);
  } else {
    std::fprintf(stderr,
                 "[WARN logging] unknown DTIO_LOG value \"%s\" "
                 "(expected debug|info|warn|error|off); level unchanged\n",
                 env);
  }
}

void set_log_sim_clock(std::function<std::int64_t()> now_ns) {
  g_sim_clock = std::move(now_ns);
}

namespace {
// DTIO_LOG takes effect in every binary that links the library, without
// each main() having to remember to call init_logging_from_env().
const bool g_env_initialized = [] {
  init_logging_from_env();
  return true;
}();
}  // namespace

namespace detail {

std::string format_log_line(LogLevel level, std::string_view file, int line,
                            std::string_view message) {
  // Trim the path to the basename to keep lines short.
  const std::size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  char head[128];
  if (g_sim_clock) {
    std::snprintf(head, sizeof head, "[%s t=%.3fus %.*s:%d] ",
                  level_name(level),
                  static_cast<double>(g_sim_clock()) / 1000.0,
                  static_cast<int>(file.size()), file.data(), line);
  } else {
    std::snprintf(head, sizeof head, "[%s %.*s:%d] ", level_name(level),
                  static_cast<int>(file.size()), file.data(), line);
  }
  std::string out(head);
  out.append(message);
  return out;
}

void emit_log(LogLevel level, std::string_view file, int line,
              std::string_view message) {
  const std::string formatted = format_log_line(level, file, line, message);
  std::fprintf(stderr, "%s\n", formatted.c_str());
}

}  // namespace detail
}  // namespace dtio
