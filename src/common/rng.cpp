#include "common/rng.h"

#include <cstdlib>

namespace dtio {

std::uint64_t run_seed(std::uint64_t fallback) noexcept {
  const char* env = std::getenv("DTIO_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

}  // namespace dtio
