// Lightweight Status / Result<T> error handling for dtio.
//
// The simulated file-system stack reports recoverable failures (file not
// found, unsupported method, short access) through Status rather than
// exceptions so that error paths are explicit at call sites, per the C++
// Core Guidelines advice for libraries whose errors are expected outcomes.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace dtio {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,   // e.g. data-sieving writes on a lock-free file system
  kInternal,
  kPermissionDenied,
  kUnavailable,  // server unreachable after retry exhaustion
  kTimedOut,     // single request deadline expired (no retries attempted)
  kDataLoss,     // payload failed integrity verification (CRC mismatch)
  kOverloaded,   // server shed the request (bounded queue full); retryable
                 // after the reply's retry_after hint
};

/// Number of StatusCode enumerators; keep in sync with the enum so the
/// name-coverage test can sweep every value.
inline constexpr int kNumStatusCodes = 12;

/// Human-readable name of a StatusCode ("OK", "NOT_FOUND", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy on success (no allocation).
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "NOT_FOUND: no such file" style rendering for logs and test output.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status unsupported(std::string msg) {
  return {StatusCode::kUnsupported, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status timed_out_error(std::string msg) {
  return {StatusCode::kTimedOut, std::move(msg)};
}
inline Status data_loss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status overloaded(std::string msg) {
  return {StatusCode::kOverloaded, std::move(msg)};
}

/// Value-or-Status. Use `value()` only after checking `is_ok()`.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result from Status requires an error");
  }

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dtio
