#include "common/stats.h"

#include "common/units.h"

namespace dtio {

std::string IoStats::to_string() const {
  std::string out;
  out += "desired=" + format_bytes(desired_bytes);
  out += " accessed=" + format_bytes(accessed_bytes);
  out += " io_ops=" + std::to_string(io_ops);
  out += " resent=" + format_bytes(resent_bytes);
  out += " req_bytes=" + format_bytes(request_bytes);
  return out;
}

}  // namespace dtio
