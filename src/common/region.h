// Offset-length regions: the flattened representation of noncontiguous
// accesses. These are the "accesses" of PVFS's job structure and the lists
// shipped by list I/O; the dataloop processor emits them as well.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dtio {

/// One contiguous byte range at `offset` (in a file or a memory buffer).
struct Region {
  std::int64_t offset = 0;
  std::int64_t length = 0;

  [[nodiscard]] std::int64_t end() const noexcept { return offset + length; }

  friend bool operator==(const Region&, const Region&) = default;
};

/// Sum of region lengths.
std::int64_t total_length(std::span<const Region> regions) noexcept;

/// True if regions are sorted by offset and non-overlapping.
bool regions_sorted_disjoint(std::span<const Region> regions) noexcept;

/// Merge adjacent regions in place (regions must be in emission order;
/// only regions where prev.end() == next.offset are merged, preserving
/// access order — this mirrors the coalescing done while building PVFS
/// access lists). Returns the number of merges performed.
std::size_t coalesce_adjacent(std::vector<Region>& regions) noexcept;

/// Intersect a sorted, disjoint region list with [lo, hi); appends the
/// clipped pieces to `out`.
void intersect_range(std::span<const Region> regions, std::int64_t lo,
                     std::int64_t hi, std::vector<Region>& out);

/// Smallest [min_offset, max_end) hull covering all regions.
/// Returns {0, 0} for an empty list.
Region bounding_hull(std::span<const Region> regions) noexcept;

/// Set-union of arbitrary (unsorted, possibly overlapping) regions:
/// returns a sorted, disjoint, coalesced list covering the same bytes.
[[nodiscard]] std::vector<Region> region_union(std::vector<Region> regions);

}  // namespace dtio
