// Box<T>: trivially-destructible ownership transfer into coroutines.
//
// RATIONALE (important): the GCC shipped here (12.2) mis-handles by-value
// coroutine parameters with non-trivial destructors — the parameter object
// is destroyed both by the coroutine frame and by the caller at the end of
// the full expression (double destruction; see tests/sim_test.cpp history
// and GCC bugzilla "coroutine parameter destroyed twice"). The project-wide
// convention is therefore:
//
//   * coroutine parameters must be trivially destructible
//     (ints, enums, raw/observer pointers, references, Box<T>);
//   * ownership of a non-trivial object is passed with Box<T>, and the
//     coroutine body calls take() exactly once;
//   * borrowed objects are passed by reference and must outlive the
//     scheduler run that drives the coroutine.
//
// A double-destroyed Box is harmless because its destructor is trivial;
// the heap object is freed exactly once, by take(). If a started coroutine
// is destroyed before its first resume the boxed object leaks — the
// simulator never abandons started coroutines, and tests run the scheduler
// to completion, so this is acceptable for the failure mode it replaces.
#pragma once

#include <cassert>
#include <utility>

namespace dtio {

template <typename T>
class Box {
 public:
  Box() noexcept : ptr_(nullptr) {}
  explicit Box(T value) : ptr_(new T(std::move(value))) {}

  // Intentionally no destructor: triviality is the whole point.
  // Copying shares the raw pointer; exactly one copy may call take().

  [[nodiscard]] bool has_value() const noexcept { return ptr_ != nullptr; }

  /// Move the value out and free the heap slot. Call exactly once across
  /// all copies of this Box; returns T{} for an empty Box.
  [[nodiscard]] T take() {
    if (ptr_ == nullptr) return T{};
    T value = std::move(*ptr_);
    delete ptr_;
    ptr_ = nullptr;
    return value;
  }

  /// Peek without consuming (the Box must be non-empty).
  [[nodiscard]] const T& peek() const {
    assert(ptr_ != nullptr);
    return *ptr_;
  }

 private:
  T* ptr_;
};

template <typename T>
[[nodiscard]] Box<T> make_box(T value) {
  return Box<T>(std::move(value));
}

}  // namespace dtio
