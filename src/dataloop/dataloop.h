// Dataloops: the concise structured-data representation at the heart of
// datatype I/O (paper §3.2, after the MPICH2 datatype-processing component
// of Ross, Miller & Gropp).
//
// A dataloop describes a (possibly noncontiguous) byte pattern using five
// descriptor kinds — contig, vector, blockindexed, indexed, struct — plus a
// leaf carrying an element size. The set is small enough to process fast
// yet expresses every MPI datatype. The type's extent is retained in the
// representation (MPI's LB/UB markers are eliminated), so resized types
// process with no extra overhead.
//
// Layout semantics of one *instance* of a dataloop anchored at byte
// `base` (instance i of a count-N access lives at base + i*extent):
//
//   leaf          el_size contiguous bytes at base.
//   contig        count child instances at base + i*child.extent.
//   vector        count blocks; block b starts at base + b*stride and
//                 holds blocklen child instances spaced child.extent.
//   blockindexed  count blocks; block b starts at base + offset[b] and
//                 holds blocklen child instances.
//   indexed       count blocks; block b starts at base + offset[b] and
//                 holds blocklen[b] child instances.
//   struct        count blocks; block b starts at base + offset[b] and
//                 holds blocklen[b] instances of child[b].
//
// All offsets/strides are in bytes. `size` is the number of data bytes one
// instance touches; `extent` is the spacing between consecutive instances.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace dtio::dl {

enum class Kind : std::uint8_t {
  kLeaf = 0,
  kContig,
  kVector,
  kBlockIndexed,
  kIndexed,
  kStruct,
};

std::string_view kind_name(Kind kind) noexcept;

class Dataloop;
using DataloopPtr = std::shared_ptr<const Dataloop>;

class Dataloop {
 public:
  Kind kind = Kind::kLeaf;
  std::int64_t count = 0;     ///< blocks (or child instances for contig)
  std::int64_t blocklen = 0;  ///< child instances per block (vector/blockindexed)
  std::int64_t stride = 0;    ///< bytes between block starts (vector)
  std::int64_t el_size = 0;   ///< leaf payload bytes
  std::vector<std::int64_t> offsets;    ///< block start bytes (blockindexed/indexed/struct)
  std::vector<std::int64_t> blocklens;  ///< per-block child counts (indexed/struct)
  DataloopPtr child;                    ///< single child (contig/vector/blockindexed/indexed)
  std::vector<DataloopPtr> children;    ///< per-block children (struct)

  // Derived, computed by the builders:
  std::int64_t size = 0;    ///< data bytes in one instance
  std::int64_t extent = 0;  ///< spacing between instances (MPI marker)
  std::int64_t lb = 0;      ///< lower-bound marker (MPI lb; resize overrides)
  std::int64_t data_lb = 0; ///< displacement of the first data byte; unlike
                            ///< lb this is never changed by make_resized and
                            ///< is what traversal uses for solid-run starts
  std::int64_t data_ub = 0; ///< one past the last data byte of one instance
                            ///< (origin-relative); with data_lb this bounds
                            ///< the file-offset span a subtree can touch,
                            ///< which is what lets traversal prune whole
                            ///< subtrees against a stripe set
  std::int64_t regions = 0; ///< cached region_count(): atomic regions one
                            ///< instance expands to (pruning accounting)
  bool solid = false;       ///< one instance is a single contiguous run of
                            ///< `size` bytes at base (and extent may still
                            ///< exceed size, leaving a trailing gap)
  std::vector<std::int64_t> block_bytes_prefix;  ///< indexed/struct: prefix
                                                 ///< sums of per-block data
                                                 ///< bytes, for O(log n) seek

  /// Nodes in this dataloop tree (cost model: decode/build charge per node).
  [[nodiscard]] std::int64_t node_count() const noexcept;

  /// Tree depth (leaf = 1).
  [[nodiscard]] int depth() const noexcept;

  /// Number of atomic contiguous regions one instance expands to (what a
  /// full flattening would produce before coalescing).
  [[nodiscard]] std::int64_t region_count() const noexcept;

  /// Multi-line debug rendering of the tree.
  [[nodiscard]] std::string to_string() const;
};

// ---- Builders -------------------------------------------------------------
//
// Builders validate their arguments (counts >= 0, lengths matching) and
// apply regularity-capturing normalisations, mirroring the paper's point
// that the five descriptors "capture the maximum amount of regularity
// possible":
//   * contig(1, X) with matching extent collapses to X
//   * vector whose stride equals blocklen*child.extent collapses to contig
//   * indexed with uniform blocklens becomes blockindexed
//   * blockindexed with uniformly-strided offsets becomes vector
// Invalid arguments throw std::invalid_argument (these are programming
// errors in type construction, not runtime I/O failures).

[[nodiscard]] DataloopPtr make_leaf(std::int64_t el_size);
[[nodiscard]] DataloopPtr make_contig(std::int64_t count, DataloopPtr child);
[[nodiscard]] DataloopPtr make_vector(std::int64_t count, std::int64_t blocklen,
                                      std::int64_t stride_bytes,
                                      DataloopPtr child);
[[nodiscard]] DataloopPtr make_blockindexed(std::int64_t count,
                                            std::int64_t blocklen,
                                            std::span<const std::int64_t> offsets_bytes,
                                            DataloopPtr child);
[[nodiscard]] DataloopPtr make_indexed(std::span<const std::int64_t> blocklens,
                                       std::span<const std::int64_t> offsets_bytes,
                                       DataloopPtr child);
[[nodiscard]] DataloopPtr make_struct(std::span<const std::int64_t> blocklens,
                                      std::span<const std::int64_t> offsets_bytes,
                                      std::span<const DataloopPtr> children);

/// Override the extent (MPI_Type_create_resized). The dataloop
/// representation carries extents natively, so this costs nothing at
/// processing time (paper §3.2).
[[nodiscard]] DataloopPtr make_resized(DataloopPtr loop, std::int64_t lb,
                                       std::int64_t extent);

}  // namespace dtio::dl
