#include "dataloop/serialize.h"

#include <cstring>
#include <stdexcept>

namespace dtio::dl {
namespace {

// Wire format, little-endian, pre-order:
//   u8  kind
//   i64 count
//   per kind:
//     leaf:         i64 el_size
//     contig:       child
//     vector:       i64 blocklen, i64 stride, child
//     blockindexed: i64 blocklen, i64 offsets[count], child
//     indexed:      i64 blocklens[count], i64 offsets[count], child
//     struct:       i64 blocklens[count], i64 offsets[count], children[count]
//   i64 lb, i64 extent   (re-applied via make_resized: covers resized types)

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) >>
                                            (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}

  std::uint8_t u8() {
    require(1);
    return in_[pos_++];
  }
  std::int64_t i64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return static_cast<std::int64_t>(v);
  }
  std::vector<std::int64_t> i64_array(std::int64_t n) {
    if (n < 0 || n > static_cast<std::int64_t>((in_.size() - pos_) / 8)) {
      throw std::invalid_argument("dataloop decode: bad array length");
    }
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) out.push_back(i64());
    return out;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == in_.size(); }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > in_.size()) {
      throw std::invalid_argument("dataloop decode: truncated input");
    }
  }
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

DataloopPtr decode_node(Reader& reader, int depth) {
  if (depth > 64) {
    throw std::invalid_argument("dataloop decode: nesting too deep");
  }
  const auto kind = static_cast<Kind>(reader.u8());
  const std::int64_t count = reader.i64();
  DataloopPtr loop;
  switch (kind) {
    case Kind::kLeaf: {
      const std::int64_t el_size = reader.i64();
      loop = make_leaf(el_size);
      break;
    }
    case Kind::kContig: {
      loop = make_contig(count, decode_node(reader, depth + 1));
      break;
    }
    case Kind::kVector: {
      const std::int64_t blocklen = reader.i64();
      const std::int64_t stride = reader.i64();
      loop = make_vector(count, blocklen, stride, decode_node(reader, depth + 1));
      break;
    }
    case Kind::kBlockIndexed: {
      const std::int64_t blocklen = reader.i64();
      const auto offsets = reader.i64_array(count);
      loop = make_blockindexed(count, blocklen, offsets,
                               decode_node(reader, depth + 1));
      break;
    }
    case Kind::kIndexed: {
      const auto blocklens = reader.i64_array(count);
      const auto offsets = reader.i64_array(count);
      loop = make_indexed(blocklens, offsets, decode_node(reader, depth + 1));
      break;
    }
    case Kind::kStruct: {
      const auto blocklens = reader.i64_array(count);
      const auto offsets = reader.i64_array(count);
      std::vector<DataloopPtr> children;
      children.reserve(static_cast<std::size_t>(count));
      for (std::int64_t i = 0; i < count; ++i) {
        children.push_back(decode_node(reader, depth + 1));
      }
      loop = make_struct(blocklens, offsets, children);
      break;
    }
    default:
      throw std::invalid_argument("dataloop decode: unknown kind");
  }
  const std::int64_t lb = reader.i64();
  const std::int64_t extent = reader.i64();
  return make_resized(std::move(loop), lb, extent);
}

}  // namespace

void encode(const Dataloop& loop, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(loop.kind));
  put_i64(out, loop.count);
  switch (loop.kind) {
    case Kind::kLeaf:
      put_i64(out, loop.el_size);
      break;
    case Kind::kContig:
      encode(*loop.child, out);
      break;
    case Kind::kVector:
      put_i64(out, loop.blocklen);
      put_i64(out, loop.stride);
      encode(*loop.child, out);
      break;
    case Kind::kBlockIndexed:
      put_i64(out, loop.blocklen);
      for (const std::int64_t off : loop.offsets) put_i64(out, off);
      encode(*loop.child, out);
      break;
    case Kind::kIndexed:
      for (const std::int64_t bl : loop.blocklens) put_i64(out, bl);
      for (const std::int64_t off : loop.offsets) put_i64(out, off);
      encode(*loop.child, out);
      break;
    case Kind::kStruct:
      for (const std::int64_t bl : loop.blocklens) put_i64(out, bl);
      for (const std::int64_t off : loop.offsets) put_i64(out, off);
      for (const auto& c : loop.children) encode(*c, out);
      break;
  }
  put_i64(out, loop.lb);
  put_i64(out, loop.extent);
}

std::size_t encoded_size(const Dataloop& loop) {
  std::size_t n = 1 + 8 + 16;  // kind + count + lb/extent trailer
  switch (loop.kind) {
    case Kind::kLeaf:
      n += 8;
      break;
    case Kind::kContig:
      n += encoded_size(*loop.child);
      break;
    case Kind::kVector:
      n += 16 + encoded_size(*loop.child);
      break;
    case Kind::kBlockIndexed:
      n += 8 + loop.offsets.size() * 8 + encoded_size(*loop.child);
      break;
    case Kind::kIndexed:
      n += (loop.blocklens.size() + loop.offsets.size()) * 8 +
           encoded_size(*loop.child);
      break;
    case Kind::kStruct:
      n += (loop.blocklens.size() + loop.offsets.size()) * 8;
      for (const auto& c : loop.children) n += encoded_size(*c);
      break;
  }
  return n;
}

DataloopPtr decode(std::span<const std::uint8_t> in) {
  Reader reader(in);
  DataloopPtr loop = decode_node(reader, 0);
  if (!reader.exhausted()) {
    throw std::invalid_argument("dataloop decode: trailing bytes");
  }
  return loop;
}

bool deep_equal(const Dataloop& a, const Dataloop& b) noexcept {
  if (a.kind != b.kind || a.count != b.count || a.blocklen != b.blocklen ||
      a.stride != b.stride || a.el_size != b.el_size || a.size != b.size ||
      a.extent != b.extent || a.lb != b.lb || a.data_lb != b.data_lb ||
      a.data_ub != b.data_ub || a.regions != b.regions ||
      a.offsets != b.offsets || a.blocklens != b.blocklens) {
    return false;
  }
  if ((a.child == nullptr) != (b.child == nullptr)) return false;
  if (a.child && !deep_equal(*a.child, *b.child)) return false;
  if (a.children.size() != b.children.size()) return false;
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!deep_equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

}  // namespace dtio::dl
