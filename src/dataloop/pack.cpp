#include "dataloop/pack.h"

#include <cstring>
#include <limits>

namespace dtio::dl {

std::size_t pack(const std::uint8_t* typed_base, Cursor& cursor,
                 std::span<std::uint8_t> out) {
  std::size_t written = 0;
  cursor.process(
      std::numeric_limits<std::int64_t>::max(),
      static_cast<std::int64_t>(out.size()),
      [&](std::int64_t off, std::int64_t len) {
        std::memcpy(out.data() + written, typed_base + off,
                    static_cast<std::size_t>(len));
        written += static_cast<std::size_t>(len);
      });
  return written;
}

std::size_t unpack(std::uint8_t* typed_base, Cursor& cursor,
                   std::span<const std::uint8_t> in) {
  std::size_t consumed = 0;
  cursor.process(
      std::numeric_limits<std::int64_t>::max(),
      static_cast<std::int64_t>(in.size()),
      [&](std::int64_t off, std::int64_t len) {
        std::memcpy(typed_base + off, in.data() + consumed,
                    static_cast<std::size_t>(len));
        consumed += static_cast<std::size_t>(len);
      });
  return consumed;
}

}  // namespace dtio::dl
