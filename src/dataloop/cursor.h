// Cursor: resumable dataloop processing (MPICH2's "segment" in this
// codebase's vocabulary).
//
// A dataloop instance defines a *stream*: its data bytes enumerated in
// traversal order. A Cursor walks `count` instances of a dataloop anchored
// at `base`, converting stream ranges into (offset, length) regions — the
// operation at the heart of datatype I/O servicing. Three properties the
// paper depends on are implemented here:
//
//   * partial processing: process() takes region/byte budgets and can be
//     resumed, so intermediate offset-length storage stays bounded
//     (paper §3.2);
//   * separation of parsing from action: the region sink is a caller
//     callback (build PVFS access lists, memcpy for pack/unpack, count);
//   * coalescing: adjacent regions merge during emission (paper §3.2,
//     "optimizations to coalesce adjacent regions").
//
// seek() repositions the cursor at an arbitrary stream byte in
// O(depth * log blocks) using per-loop size metadata — this is what lets
// an I/O server start processing at the first byte that falls in its own
// stripe set without walking the prefix.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/region.h"
#include "dataloop/dataloop.h"

namespace dtio::dl {

/// Outcome of one process() call.
struct ProcessResult {
  std::int64_t regions = 0;  ///< regions handed to the sink
  std::int64_t bytes = 0;    ///< stream bytes consumed
};

class Cursor {
 public:
  /// Walk `count` instances of `loop`, instance i anchored at
  /// base + i*loop->extent.
  Cursor(DataloopPtr loop, std::int64_t base, std::int64_t count);

  [[nodiscard]] std::int64_t total_bytes() const noexcept {
    return count_ * loop_->size;
  }
  [[nodiscard]] std::int64_t position() const noexcept { return pos_; }
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Reposition at an absolute stream byte (0 <= pos <= total_bytes()).
  void seek(std::int64_t stream_pos);

  /// Emit regions to `sink(offset, length)` until `max_regions` regions or
  /// `max_bytes` stream bytes have been produced, or the stream ends.
  /// Regions arrive in stream order; with `coalesce`, adjacent ones are
  /// merged before reaching the sink. Resumable: call again to continue.
  template <typename Sink>
  ProcessResult process(std::int64_t max_regions, std::int64_t max_bytes,
                        Sink&& sink, bool coalesce = true) {
    ProcessResult result;
    Region pending{0, 0};
    bool have_pending = false;
    Region r;
    while (result.bytes < max_bytes && peek(r)) {
      const std::int64_t len = std::min(r.length, max_bytes - result.bytes);
      if (have_pending && coalesce && pending.end() == r.offset) {
        pending.length += len;
      } else {
        if (have_pending) {
          sink(pending.offset, pending.length);
          ++result.regions;
          have_pending = false;
          if (result.regions == max_regions) break;
        }
        pending = Region{r.offset, len};
        have_pending = true;
      }
      advance(len);
      result.bytes += len;
    }
    if (have_pending) {
      sink(pending.offset, pending.length);
      ++result.regions;
    }
    return result;
  }

  /// Expose the next atomic region without consuming it (false when done).
  bool peek(Region& out);

  /// Consume `len` bytes (len <= the length peek() reported).
  void advance(std::int64_t len);

 private:
  struct Frame {
    const Dataloop* loop;
    std::int64_t origin;  ///< absolute byte offset of this instance's origin
    std::int64_t block = 0;
    std::int64_t elem = 0;
  };

  /// Ensure the stack top denotes the current atomic region (or done).
  void settle();
  void pop_and_advance();
  void descend_to(const Dataloop* loop, std::int64_t origin, std::int64_t rem);

  static bool block_atomic(const Dataloop& loop) noexcept;
  [[nodiscard]] Region current_region() const;

  DataloopPtr loop_;
  std::int64_t base_;
  std::int64_t count_;
  std::int64_t inst_ = 0;
  std::int64_t pos_ = 0;
  std::int64_t region_consumed_ = 0;
  bool done_ = false;
  std::vector<Frame> stack_;
};

/// Convenience: fully flatten `count` instances into a region list.
[[nodiscard]] std::vector<Region> flatten(const DataloopPtr& loop,
                                          std::int64_t base,
                                          std::int64_t count,
                                          bool coalesce = true);

}  // namespace dtio::dl
