// Cursor: resumable dataloop processing (MPICH2's "segment" in this
// codebase's vocabulary).
//
// A dataloop instance defines a *stream*: its data bytes enumerated in
// traversal order. A Cursor walks `count` instances of a dataloop anchored
// at `base`, converting stream ranges into (offset, length) regions — the
// operation at the heart of datatype I/O servicing. Three properties the
// paper depends on are implemented here:
//
//   * partial processing: process() takes region/byte budgets and can be
//     resumed, so intermediate offset-length storage stays bounded
//     (paper §3.2);
//   * separation of parsing from action: the region sink is a caller
//     callback (build PVFS access lists, memcpy for pack/unpack, count);
//   * coalescing: adjacent regions merge during emission (paper §3.2,
//     "optimizations to coalesce adjacent regions").
//
// seek() repositions the cursor at an arbitrary stream byte in
// O(depth * log blocks) using per-loop size metadata — this is what lets
// an I/O server start processing at the first byte that falls in its own
// stripe set without walking the prefix.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/region.h"
#include "dataloop/dataloop.h"

namespace dtio::dl {

/// Outcome of one process() call.
struct ProcessResult {
  std::int64_t regions = 0;  ///< regions handed to the sink
  std::int64_t bytes = 0;    ///< stream bytes consumed
};

class Cursor {
 public:
  /// Walk `count` instances of `loop`, instance i anchored at
  /// base + i*loop->extent.
  Cursor(DataloopPtr loop, std::int64_t base, std::int64_t count);

  [[nodiscard]] std::int64_t total_bytes() const noexcept {
    return count_ * loop_->size;
  }
  [[nodiscard]] std::int64_t position() const noexcept { return pos_; }
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Reposition at an absolute stream byte (0 <= pos <= total_bytes()).
  void seek(std::int64_t stream_pos);

  /// Span filter for pruned traversal. Before descending into a subtree
  /// (a whole instance, a block, or a child instance) whose data bytes all
  /// lie within file offsets [lo, hi), traversal asks the filter whether
  /// that interval is interesting; a `false` answer skips the subtree
  /// without expanding it — the stream position still advances past its
  /// bytes, so seek/resume and window accounting stay exact. This is what
  /// lets an I/O server stay sublinear in other servers' data: combined
  /// with FileLayout::intersects_server, whole rows/tiles that miss this
  /// server's strips cost one probe instead of a walk. The filter must be
  /// conservative: it may keep a span it does not need, but must never
  /// reject a span that contains wanted bytes.
  using FilterFn = bool (*)(const void* ctx, std::int64_t lo, std::int64_t hi);
  void set_filter(FilterFn fn, const void* ctx) noexcept {
    filter_ = fn;
    filter_ctx_ = ctx;
  }

  /// Hard stream end: the cursor reports done at `stream_end` even when
  /// more instances remain, and peek() clips the last region to it. This
  /// bounds a request's stream window independently of process() byte
  /// budgets — required under a filter, where skipped subtrees consume
  /// stream bytes that never reach the sink.
  void set_stream_limit(std::int64_t stream_end) noexcept {
    limit_ = stream_end;
    if (pos_ >= limit_) done_ = true;
  }

  /// Pruning telemetry (cumulative across process() calls).
  [[nodiscard]] std::int64_t subtrees_skipped() const noexcept {
    return subtrees_skipped_;
  }
  [[nodiscard]] std::int64_t regions_pruned() const noexcept {
    return regions_pruned_;
  }
  [[nodiscard]] std::int64_t bytes_pruned() const noexcept {
    return bytes_pruned_;
  }

  /// Emit regions to `sink(offset, length)` until `max_regions` regions or
  /// `max_bytes` stream bytes have been produced, or the stream ends.
  /// Regions arrive in stream order; with `coalesce`, adjacent ones are
  /// merged before reaching the sink. Resumable: call again to continue.
  template <typename Sink>
  ProcessResult process(std::int64_t max_regions, std::int64_t max_bytes,
                        Sink&& sink, bool coalesce = true) {
    ProcessResult result;
    Region pending{0, 0};
    bool have_pending = false;
    Region r;
    while (result.bytes < max_bytes && peek(r)) {
      const std::int64_t len = std::min(r.length, max_bytes - result.bytes);
      if (have_pending && coalesce && pending.end() == r.offset) {
        pending.length += len;
      } else {
        if (have_pending) {
          sink(pending.offset, pending.length);
          ++result.regions;
          have_pending = false;
          if (result.regions == max_regions) break;
        }
        pending = Region{r.offset, len};
        have_pending = true;
      }
      advance(len);
      result.bytes += len;
    }
    if (have_pending) {
      sink(pending.offset, pending.length);
      ++result.regions;
    }
    return result;
  }

  /// Expose the next atomic region without consuming it (false when done).
  bool peek(Region& out);

  /// Consume `len` bytes (len <= the length peek() reported).
  void advance(std::int64_t len);

 private:
  struct Frame {
    const Dataloop* loop;
    std::int64_t origin;  ///< absolute byte offset of this instance's origin
    std::int64_t block = 0;
    std::int64_t elem = 0;
  };

  /// Ensure the stack top denotes the current atomic region (or done).
  void settle();
  void pop_and_advance();
  void descend_to(const Dataloop* loop, std::int64_t origin, std::int64_t rem);

  static bool block_atomic(const Dataloop& loop) noexcept;
  [[nodiscard]] Region current_region() const;

  /// Skip a fresh subtree instance anchored at `origin` if its file span
  /// misses the filter; true means skipped (stream advanced past it).
  bool prune_subtree(const Dataloop& sub, std::int64_t origin);
  /// Same for a whole block of `blocklen` child instances starting at
  /// `start` (child spacing = extent).
  bool prune_block(const Dataloop& child, std::int64_t start,
                   std::int64_t blocklen);
  /// Same for a block-atomic block whose (remaining) contiguous region is
  /// region_consumed_ bytes into {region_lo, region_len}.
  bool prune_atomic(std::int64_t region_lo, std::int64_t region_len);

  DataloopPtr loop_;
  std::int64_t base_;
  std::int64_t count_;
  std::int64_t inst_ = 0;
  std::int64_t pos_ = 0;
  std::int64_t region_consumed_ = 0;
  bool done_ = false;
  std::vector<Frame> stack_;

  FilterFn filter_ = nullptr;
  const void* filter_ctx_ = nullptr;
  std::int64_t limit_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t subtrees_skipped_ = 0;
  std::int64_t regions_pruned_ = 0;
  std::int64_t bytes_pruned_ = 0;
};

/// Convenience: fully flatten `count` instances into a region list.
[[nodiscard]] std::vector<Region> flatten(const DataloopPtr& loop,
                                          std::int64_t base,
                                          std::int64_t count,
                                          bool coalesce = true);

}  // namespace dtio::dl
