// Pack/unpack: move real bytes between a typed (noncontiguous) buffer and
// a contiguous stream, driven by a dataloop Cursor.
//
// This is the "action" half of the engine's parse/action separation: the
// same cursor that builds PVFS access lists also drives memcpy here. The
// simulated clients use pack/unpack for the memory side of datatype I/O
// and for staging data into sieve/collective buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "dataloop/cursor.h"

namespace dtio::dl {

/// Gather: copy the next out.size() stream bytes (or fewer, at stream end)
/// from the typed layout rooted at `typed_base` into `out`. The cursor must
/// have been constructed with base 0; it advances past what was packed.
/// Returns bytes written.
std::size_t pack(const std::uint8_t* typed_base, Cursor& cursor,
                 std::span<std::uint8_t> out);

/// Scatter: the inverse of pack. Returns bytes consumed from `in`.
std::size_t unpack(std::uint8_t* typed_base, Cursor& cursor,
                   std::span<const std::uint8_t> in);

}  // namespace dtio::dl
