#include "dataloop/cursor.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dtio::dl {

namespace {

bool packed(const Dataloop& loop) noexcept {
  return loop.solid && loop.extent == loop.size;
}

}  // namespace

Cursor::Cursor(DataloopPtr loop, std::int64_t base, std::int64_t count)
    : loop_(std::move(loop)), base_(base), count_(count) {
  if (!loop_) throw std::invalid_argument("Cursor: null dataloop");
  if (count_ < 0) throw std::invalid_argument("Cursor: negative count");
  if (count_ == 0 || loop_->size == 0) done_ = true;
}

bool Cursor::block_atomic(const Dataloop& loop) noexcept {
  // Blocks of `blocklen` packed child instances form single contiguous
  // runs: emit at block granularity instead of descending per element.
  switch (loop.kind) {
    case Kind::kVector:
    case Kind::kBlockIndexed:
    case Kind::kIndexed:
      return packed(*loop.child);
    case Kind::kStruct:
      return false;  // handled per-block (children differ)
    default:
      return false;
  }
}

bool Cursor::prune_subtree(const Dataloop& sub, std::int64_t origin) {
  if (filter_ == nullptr ||
      filter_(filter_ctx_, origin + sub.data_lb, origin + sub.data_ub)) {
    return false;
  }
  pos_ += sub.size;
  ++subtrees_skipped_;
  regions_pruned_ += sub.regions;
  bytes_pruned_ += sub.size;
  return true;
}

bool Cursor::prune_block(const Dataloop& child, std::int64_t start,
                         std::int64_t blocklen) {
  if (filter_ == nullptr) return false;
  // Instances sit at start + j*extent, j in [0, blocklen); extent may be
  // negative, so take the span over both ends.
  const std::int64_t span = (blocklen - 1) * child.extent;
  const std::int64_t lo = start + std::min<std::int64_t>(span, 0) + child.data_lb;
  const std::int64_t hi = start + std::max<std::int64_t>(span, 0) + child.data_ub;
  if (filter_(filter_ctx_, lo, hi)) return false;
  const std::int64_t bytes = blocklen * child.size;
  pos_ += bytes;
  ++subtrees_skipped_;
  regions_pruned_ += packed(child) ? 1 : blocklen * child.regions;
  bytes_pruned_ += bytes;
  return true;
}

bool Cursor::prune_atomic(std::int64_t region_lo, std::int64_t region_len) {
  if (filter_ == nullptr) return false;
  // A sub-span of a rejected span is also rejected, so skipping the
  // remainder of a partially-consumed block region is sound.
  const std::int64_t lo = region_lo + region_consumed_;
  const std::int64_t len = region_len - region_consumed_;
  if (filter_(filter_ctx_, lo, lo + len)) return false;
  pos_ += len;
  region_consumed_ = 0;
  ++subtrees_skipped_;
  ++regions_pruned_;
  bytes_pruned_ += len;
  return true;
}

void Cursor::settle() {
  while (!done_) {
    if (pos_ >= limit_) {
      done_ = true;
      return;
    }
    if (stack_.empty()) {
      if (inst_ == count_) {
        done_ = true;
        return;
      }
      const std::int64_t origin = base_ + inst_ * loop_->extent;
      if (prune_subtree(*loop_, origin)) {
        ++inst_;
        continue;
      }
      stack_.push_back(Frame{loop_.get(), origin});
      continue;
    }
    Frame& f = stack_.back();
    const Dataloop& L = *f.loop;

    if (L.kind == Kind::kLeaf || L.solid) return;  // atomic whole instance

    switch (L.kind) {
      case Kind::kContig: {
        if (f.block == L.count || L.child->size == 0) {
          pop_and_advance();
          break;
        }
        const std::int64_t origin = f.origin + f.block * L.child->extent;
        if (prune_subtree(*L.child, origin)) {
          ++f.block;
          break;
        }
        stack_.push_back(Frame{L.child.get(), origin});
        break;
      }
      case Kind::kVector:
      case Kind::kBlockIndexed: {
        if (f.block == L.count || L.child->size == 0 || L.blocklen == 0) {
          pop_and_advance();
          break;
        }
        if (f.elem == L.blocklen) {
          f.elem = 0;
          ++f.block;
          break;
        }
        const std::int64_t start =
            f.origin + (L.kind == Kind::kVector
                            ? f.block * L.stride
                            : L.offsets[static_cast<std::size_t>(f.block)]);
        if (block_atomic(L)) {
          if (prune_atomic(start + L.child->data_lb,
                           L.blocklen * L.child->size)) {
            f.elem = 0;
            ++f.block;
            break;
          }
          return;  // atomic block
        }
        if (f.elem == 0 && prune_block(*L.child, start, L.blocklen)) {
          ++f.block;
          break;
        }
        const std::int64_t elem_origin = start + f.elem * L.child->extent;
        if (prune_subtree(*L.child, elem_origin)) {
          ++f.elem;
          break;
        }
        stack_.push_back(Frame{L.child.get(), elem_origin});
        break;
      }
      case Kind::kIndexed: {
        if (f.block == L.count || L.child->size == 0) {
          pop_and_advance();
          break;
        }
        const std::int64_t bl = L.blocklens[static_cast<std::size_t>(f.block)];
        if (bl == 0 || f.elem == bl) {
          f.elem = 0;
          ++f.block;
          break;
        }
        const std::int64_t start =
            f.origin + L.offsets[static_cast<std::size_t>(f.block)];
        if (block_atomic(L)) {
          if (prune_atomic(start + L.child->data_lb, bl * L.child->size)) {
            f.elem = 0;
            ++f.block;
            break;
          }
          return;  // atomic block
        }
        if (f.elem == 0 && prune_block(*L.child, start, bl)) {
          ++f.block;
          break;
        }
        const std::int64_t elem_origin = start + f.elem * L.child->extent;
        if (prune_subtree(*L.child, elem_origin)) {
          ++f.elem;
          break;
        }
        stack_.push_back(Frame{L.child.get(), elem_origin});
        break;
      }
      case Kind::kStruct: {
        if (f.block == L.count) {
          pop_and_advance();
          break;
        }
        const auto bi = static_cast<std::size_t>(f.block);
        const Dataloop& child = *L.children[bi];
        const std::int64_t bl = L.blocklens[bi];
        if (bl == 0 || child.size == 0 || f.elem == bl) {
          f.elem = 0;
          ++f.block;
          break;
        }
        const std::int64_t start = f.origin + L.offsets[bi];
        if (packed(child)) {
          if (prune_atomic(start + child.data_lb, bl * child.size)) {
            f.elem = 0;
            ++f.block;
            break;
          }
          return;  // atomic block
        }
        if (f.elem == 0 && prune_block(child, start, bl)) {
          ++f.block;
          break;
        }
        const std::int64_t elem_origin = start + f.elem * child.extent;
        if (prune_subtree(child, elem_origin)) {
          ++f.elem;
          break;
        }
        stack_.push_back(Frame{&child, elem_origin});
        break;
      }
      case Kind::kLeaf:
        return;  // unreachable (handled above)
    }
  }
}

void Cursor::pop_and_advance() {
  stack_.pop_back();
  if (stack_.empty()) {
    ++inst_;
    return;
  }
  Frame& parent = stack_.back();
  if (parent.loop->kind == Kind::kContig) {
    ++parent.block;
  } else {
    ++parent.elem;
  }
}

Region Cursor::current_region() const {
  const Frame& f = stack_.back();
  const Dataloop& L = *f.loop;
  Region r;
  if (L.kind == Kind::kLeaf) {
    r = Region{f.origin, L.el_size};
  } else if (L.solid) {
    r = Region{f.origin + L.data_lb, L.size};
  } else {
    // Block-atomic: whole block of packed child instances.
    const auto bi = static_cast<std::size_t>(f.block);
    std::int64_t start = f.origin;
    std::int64_t bl = 0;
    const Dataloop* child = nullptr;
    switch (L.kind) {
      case Kind::kVector:
        start += f.block * L.stride;
        bl = L.blocklen;
        child = L.child.get();
        break;
      case Kind::kBlockIndexed:
        start += L.offsets[bi];
        bl = L.blocklen;
        child = L.child.get();
        break;
      case Kind::kIndexed:
        start += L.offsets[bi];
        bl = L.blocklens[bi];
        child = L.child.get();
        break;
      case Kind::kStruct:
        start += L.offsets[bi];
        bl = L.blocklens[bi];
        child = L.children[bi].get();
        break;
      default:
        assert(false && "unexpected atomic frame kind");
        return {};
    }
    r = Region{start + child->data_lb, bl * child->size};
  }
  r.offset += region_consumed_;
  r.length -= region_consumed_;
  return r;
}

bool Cursor::peek(Region& out) {
  settle();
  if (done_) return false;
  out = current_region();
  // A stream limit may cut the final region short.
  if (out.length > limit_ - pos_) out.length = limit_ - pos_;
  return true;
}

void Cursor::advance(std::int64_t len) {
  assert(!done_ && !stack_.empty());
  const Region r = current_region();
  assert(len >= 0 && len <= r.length);
  pos_ += len;
  if (len < r.length) {
    region_consumed_ += len;
    return;
  }
  region_consumed_ = 0;

  Frame& f = stack_.back();
  const Dataloop& L = *f.loop;
  if (L.kind == Kind::kLeaf || L.solid) {
    pop_and_advance();
  } else {
    // Block-atomic frame: advance to the next block.
    f.elem = 0;
    ++f.block;
  }
}

void Cursor::seek(std::int64_t stream_pos) {
  if (stream_pos < 0 || stream_pos > total_bytes()) {
    throw std::out_of_range("Cursor::seek: position outside stream");
  }
  stack_.clear();
  region_consumed_ = 0;
  pos_ = stream_pos;
  done_ = false;
  if (stream_pos == total_bytes() || loop_->size == 0) {
    inst_ = count_;
    done_ = true;
    return;
  }
  inst_ = stream_pos / loop_->size;
  const std::int64_t rem = stream_pos % loop_->size;
  descend_to(loop_.get(), base_ + inst_ * loop_->extent, rem);
}

void Cursor::descend_to(const Dataloop* loop, std::int64_t origin,
                        std::int64_t rem) {
  const Dataloop& L = *loop;
  Frame frame{loop, origin};

  if (L.kind == Kind::kLeaf || L.solid) {
    region_consumed_ = rem;
    stack_.push_back(frame);
    return;
  }

  switch (L.kind) {
    case Kind::kContig: {
      const std::int64_t i = rem / L.child->size;
      frame.block = i;
      stack_.push_back(frame);
      descend_to(L.child.get(), origin + i * L.child->extent,
                 rem % L.child->size);
      return;
    }
    case Kind::kVector:
    case Kind::kBlockIndexed: {
      const std::int64_t bpb = L.blocklen * L.child->size;
      const std::int64_t b = rem / bpb;
      const std::int64_t in_block = rem % bpb;
      frame.block = b;
      const std::int64_t start =
          origin + (L.kind == Kind::kVector
                        ? b * L.stride
                        : L.offsets[static_cast<std::size_t>(b)]);
      if (block_atomic(L)) {
        region_consumed_ = in_block;
        stack_.push_back(frame);
        return;
      }
      const std::int64_t e = in_block / L.child->size;
      frame.elem = e;
      stack_.push_back(frame);
      descend_to(L.child.get(), start + e * L.child->extent,
                 in_block % L.child->size);
      return;
    }
    case Kind::kIndexed:
    case Kind::kStruct: {
      // Locate the block containing `rem` via the per-block byte prefix
      // sums (zero-size blocks collapse to duplicate prefix entries and
      // are skipped by taking the last block starting at or before rem).
      const auto& prefix = L.block_bytes_prefix;
      const auto it = std::upper_bound(prefix.begin(), prefix.end(), rem);
      const std::int64_t b = (it - prefix.begin()) - 1;
      const std::int64_t in_block = rem - prefix[static_cast<std::size_t>(b)];
      const auto bi = static_cast<std::size_t>(b);
      const Dataloop* child =
          L.kind == Kind::kStruct ? L.children[bi].get() : L.child.get();
      frame.block = b;
      const std::int64_t start = origin + L.offsets[bi];
      if (packed(*child)) {
        region_consumed_ = in_block;
        stack_.push_back(frame);
        return;
      }
      const std::int64_t e = in_block / child->size;
      frame.elem = e;
      stack_.push_back(frame);
      descend_to(child, start + e * child->extent, in_block % child->size);
      return;
    }
    case Kind::kLeaf:
      return;  // unreachable
  }
}

std::vector<Region> flatten(const DataloopPtr& loop, std::int64_t base,
                            std::int64_t count, bool coalesce) {
  Cursor cursor(loop, base, count);
  std::vector<Region> regions;
  cursor.process(
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::max(),
      [&](std::int64_t off, std::int64_t len) {
        regions.push_back(Region{off, len});
      },
      coalesce);
  return regions;
}

}  // namespace dtio::dl
