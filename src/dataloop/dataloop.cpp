#include "dataloop/dataloop.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace dtio::dl {

std::string_view kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kLeaf:
      return "leaf";
    case Kind::kContig:
      return "contig";
    case Kind::kVector:
      return "vector";
    case Kind::kBlockIndexed:
      return "blockindexed";
    case Kind::kIndexed:
      return "indexed";
    case Kind::kStruct:
      return "struct";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("dataloop: " + what);
}

void require(bool ok, const char* what) {
  if (!ok) fail(what);
}

/// One child instance is a gapless run exactly filling its extent, so
/// consecutive instances tile into a larger contiguous run.
bool packed(const Dataloop& loop) noexcept {
  return loop.solid && loop.extent == loop.size;
}


}  // namespace

std::int64_t Dataloop::node_count() const noexcept {
  std::int64_t n = 1;
  if (child) n += child->node_count();
  for (const auto& c : children) n += c->node_count();
  return n;
}

int Dataloop::depth() const noexcept {
  int d = 0;
  if (child) d = child->depth();
  for (const auto& c : children) d = std::max(d, c->depth());
  return d + 1;
}

std::int64_t Dataloop::region_count() const noexcept { return regions; }

namespace {

void render(const Dataloop& loop, std::ostringstream& out, int indent) {
  for (int i = 0; i < indent; ++i) out << "  ";
  out << kind_name(loop.kind) << "(count=" << loop.count;
  if (loop.kind == Kind::kLeaf) out << ", el_size=" << loop.el_size;
  if (loop.kind == Kind::kVector || loop.kind == Kind::kBlockIndexed) {
    out << ", blocklen=" << loop.blocklen;
  }
  if (loop.kind == Kind::kVector) out << ", stride=" << loop.stride;
  out << ", size=" << loop.size << ", extent=" << loop.extent
      << ", lb=" << loop.lb << (loop.solid ? ", solid" : "") << ")\n";
  if (loop.child) render(*loop.child, out, indent + 1);
  for (const auto& c : loop.children) render(*c, out, indent + 1);
}

}  // namespace

std::string Dataloop::to_string() const {
  std::ostringstream out;
  render(*this, out, 0);
  return out.str();
}

DataloopPtr make_leaf(std::int64_t el_size) {
  require(el_size > 0, "leaf element size must be positive");
  auto loop = std::make_shared<Dataloop>();
  loop->kind = Kind::kLeaf;
  loop->count = 1;
  loop->el_size = el_size;
  loop->size = el_size;
  loop->extent = el_size;
  loop->lb = 0;
  loop->data_lb = 0;
  loop->data_ub = el_size;
  loop->solid = true;
  loop->regions = 1;
  return loop;
}

DataloopPtr make_contig(std::int64_t count, DataloopPtr child) {
  require(count >= 0, "contig count must be >= 0");
  require(child != nullptr, "contig child must not be null");
  require(child->extent >= 0, "contig child extent must be >= 0");

  // contig(1, X) adds nothing: the derived fields match X exactly.
  if (count == 1) return child;

  // contig of contig collapses: spacing inside and outside both equal the
  // grandchild extent, so a single loop with the product count suffices.
  // Only valid when the inner contig was not resized: its extent/lb must
  // still be the natural count * grandchild-extent tiling.
  if (count > 0 && child->kind == Kind::kContig &&
      child->extent == child->count * child->child->extent &&
      child->lb == (child->count == 0 ? 0 : child->child->lb)) {
    return make_contig(count * child->count, child->child);
  }

  auto loop = std::make_shared<Dataloop>();
  loop->kind = Kind::kContig;
  loop->count = count;
  loop->size = count * child->size;
  loop->extent = count * child->extent;
  loop->lb = count == 0 ? 0 : child->lb;
  loop->data_lb = count == 0 ? 0 : child->data_lb;
  loop->data_ub = loop->size == 0
                      ? loop->data_lb
                      : (count - 1) * child->extent + child->data_ub;
  loop->solid = count == 0 || packed(*child) ||
                (count == 1 && child->solid);
  loop->regions =
      loop->size == 0 ? 0 : (loop->solid ? 1 : count * child->regions);
  loop->child = std::move(child);
  return loop;
}

DataloopPtr make_vector(std::int64_t count, std::int64_t blocklen,
                        std::int64_t stride_bytes, DataloopPtr child) {
  require(count >= 0, "vector count must be >= 0");
  require(blocklen >= 0, "vector blocklen must be >= 0");
  require(child != nullptr, "vector child must not be null");

  // Degenerate shapes reduce to contig.
  if (count == 0 || blocklen == 0) return make_contig(0, std::move(child));
  if (count == 1) return make_contig(blocklen, std::move(child));
  if (stride_bytes == blocklen * child->extent) {
    // Blocks tile seamlessly: the whole vector is one contiguous sequence
    // of child instances.
    return make_contig(count * blocklen, std::move(child));
  }

  auto loop = std::make_shared<Dataloop>();
  loop->kind = Kind::kVector;
  loop->count = count;
  loop->blocklen = blocklen;
  loop->stride = stride_bytes;
  loop->size = count * blocklen * child->size;
  const std::int64_t block_extent = blocklen * child->extent;
  const std::int64_t last = (count - 1) * stride_bytes;
  loop->lb = child->lb + std::min<std::int64_t>(0, last);
  loop->data_lb = child->data_lb + std::min<std::int64_t>(0, last);
  loop->data_ub = loop->size == 0
                      ? loop->data_lb
                      : std::max<std::int64_t>(0, last) +
                            (blocklen - 1) * child->extent + child->data_ub;
  loop->extent = std::max<std::int64_t>(0, last) + block_extent -
                 std::min<std::int64_t>(0, last);
  loop->solid = false;  // seamless tiling was normalised to contig above
  loop->regions =
      loop->size == 0
          ? 0
          : count * (packed(*child) ? 1 : blocklen * child->regions);
  loop->child = std::move(child);
  return loop;
}

DataloopPtr make_blockindexed(std::int64_t count, std::int64_t blocklen,
                              std::span<const std::int64_t> offsets_bytes,
                              DataloopPtr child) {
  require(count >= 0, "blockindexed count must be >= 0");
  require(blocklen >= 0, "blockindexed blocklen must be >= 0");
  require(child != nullptr, "blockindexed child must not be null");
  require(static_cast<std::int64_t>(offsets_bytes.size()) == count,
          "blockindexed offsets length must equal count");

  if (count == 0 || blocklen == 0) return make_contig(0, std::move(child));

  // Uniformly strided offsets are a vector (anchored at zero) — the classic
  // regularity recovery. Offsets with a nonzero anchor stay blockindexed.
  if (count >= 2) {
    const std::int64_t step = offsets_bytes[1] - offsets_bytes[0];
    bool uniform = offsets_bytes[0] == 0;
    for (std::int64_t i = 1; uniform && i < count; ++i) {
      uniform = offsets_bytes[static_cast<std::size_t>(i)] ==
                static_cast<std::int64_t>(i) * step;
    }
    if (uniform) {
      return make_vector(count, blocklen, step, std::move(child));
    }
  } else {  // count == 1
    if (offsets_bytes[0] == 0) return make_contig(blocklen, std::move(child));
  }

  auto loop = std::make_shared<Dataloop>();
  loop->kind = Kind::kBlockIndexed;
  loop->count = count;
  loop->blocklen = blocklen;
  loop->offsets.assign(offsets_bytes.begin(), offsets_bytes.end());
  loop->size = count * blocklen * child->size;
  const std::int64_t block_extent = blocklen * child->extent;
  std::int64_t lo = offsets_bytes[0];
  std::int64_t hi = offsets_bytes[0];
  for (const std::int64_t off : offsets_bytes) {
    lo = std::min(lo, off);
    hi = std::max(hi, off);
  }
  loop->lb = lo + child->lb;
  loop->data_lb = lo + child->data_lb;
  loop->data_ub = loop->size == 0
                      ? loop->data_lb
                      : hi + (blocklen - 1) * child->extent + child->data_ub;
  loop->extent = (hi + block_extent + child->lb) - loop->lb;
  loop->solid = count == 1 && child->solid && blocklen == 1;
  loop->regions =
      loop->size == 0
          ? 0
          : (loop->solid
                 ? 1
                 : count * (packed(*child) ? 1 : blocklen * child->regions));
  loop->child = std::move(child);
  return loop;
}

DataloopPtr make_indexed(std::span<const std::int64_t> blocklens,
                         std::span<const std::int64_t> offsets_bytes,
                         DataloopPtr child) {
  require(child != nullptr, "indexed child must not be null");
  require(blocklens.size() == offsets_bytes.size(),
          "indexed blocklens/offsets length mismatch");
  for (const std::int64_t bl : blocklens) {
    require(bl >= 0, "indexed blocklens must be >= 0");
  }
  const auto count = static_cast<std::int64_t>(blocklens.size());

  if (count == 0) return make_contig(0, std::move(child));

  // Uniform block lengths reduce to blockindexed (which may in turn reduce
  // to vector/contig).
  const bool uniform = std::all_of(
      blocklens.begin(), blocklens.end(),
      [&](std::int64_t bl) { return bl == blocklens[0]; });
  if (uniform) {
    return make_blockindexed(count, blocklens[0], offsets_bytes,
                             std::move(child));
  }

  auto loop = std::make_shared<Dataloop>();
  loop->kind = Kind::kIndexed;
  loop->count = count;
  loop->blocklens.assign(blocklens.begin(), blocklens.end());
  loop->offsets.assign(offsets_bytes.begin(), offsets_bytes.end());

  std::int64_t size = 0;
  bool first = true;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t data_hi = 0;
  std::int64_t regions = 0;
  loop->block_bytes_prefix.reserve(static_cast<std::size_t>(count) + 1);
  loop->block_bytes_prefix.push_back(0);
  for (std::int64_t b = 0; b < count; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    size += blocklens[bi] * child->size;
    loop->block_bytes_prefix.push_back(size);
    if (blocklens[bi] == 0) continue;
    regions += packed(*child) ? 1 : blocklens[bi] * child->regions;
    const std::int64_t begin = offsets_bytes[bi] + child->lb;
    const std::int64_t end =
        offsets_bytes[bi] + blocklens[bi] * child->extent + child->lb;
    const std::int64_t data_end =
        offsets_bytes[bi] + (blocklens[bi] - 1) * child->extent + child->data_ub;
    if (first) {
      lo = begin;
      hi = end;
      data_hi = data_end;
      first = false;
    } else {
      lo = std::min(lo, begin);
      hi = std::max(hi, end);
      data_hi = std::max(data_hi, data_end);
    }
  }
  loop->size = size;
  loop->lb = lo;
  loop->data_lb = lo - child->lb + child->data_lb;
  loop->data_ub = size == 0 ? loop->data_lb : data_hi;
  loop->extent = hi - lo;
  loop->solid = false;
  loop->regions = size == 0 ? 0 : regions;
  loop->child = std::move(child);
  return loop;
}

DataloopPtr make_struct(std::span<const std::int64_t> blocklens,
                        std::span<const std::int64_t> offsets_bytes,
                        std::span<const DataloopPtr> children) {
  require(blocklens.size() == offsets_bytes.size() &&
              blocklens.size() == children.size(),
          "struct blocklens/offsets/children length mismatch");
  for (const auto& c : children) {
    require(c != nullptr, "struct children must not be null");
  }
  for (const std::int64_t bl : blocklens) {
    require(bl >= 0, "struct blocklens must be >= 0");
  }
  const auto count = static_cast<std::int64_t>(blocklens.size());

  // A homogeneous struct is an indexed type.
  if (count > 0) {
    const bool homogeneous =
        std::all_of(children.begin(), children.end(),
                    [&](const DataloopPtr& c) { return c == children[0]; });
    if (homogeneous) {
      return make_indexed(blocklens, offsets_bytes, children[0]);
    }
  }

  auto loop = std::make_shared<Dataloop>();
  loop->kind = Kind::kStruct;
  loop->count = count;
  loop->blocklens.assign(blocklens.begin(), blocklens.end());
  loop->offsets.assign(offsets_bytes.begin(), offsets_bytes.end());
  loop->children.assign(children.begin(), children.end());

  std::int64_t size = 0;
  bool first = true;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t data_lo = 0;
  std::int64_t data_hi = 0;
  std::int64_t regions = 0;
  loop->block_bytes_prefix.reserve(static_cast<std::size_t>(count) + 1);
  loop->block_bytes_prefix.push_back(0);
  for (std::int64_t b = 0; b < count; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    const Dataloop& c = *children[bi];
    size += blocklens[bi] * c.size;
    loop->block_bytes_prefix.push_back(size);
    if (blocklens[bi] == 0 || c.size == 0) continue;
    regions += packed(c) ? 1 : blocklens[bi] * c.regions;
    const std::int64_t begin = offsets_bytes[bi] + c.lb;
    const std::int64_t end = offsets_bytes[bi] + blocklens[bi] * c.extent + c.lb;
    const std::int64_t data_begin = offsets_bytes[bi] + c.data_lb;
    const std::int64_t data_end =
        offsets_bytes[bi] + (blocklens[bi] - 1) * c.extent + c.data_ub;
    if (first) {
      lo = begin;
      hi = end;
      data_lo = data_begin;
      data_hi = data_end;
      first = false;
    } else {
      lo = std::min(lo, begin);
      hi = std::max(hi, end);
      data_lo = std::min(data_lo, data_begin);
      data_hi = std::max(data_hi, data_end);
    }
  }
  loop->size = size;
  loop->lb = lo;
  loop->data_lb = data_lo;
  loop->data_ub = size == 0 ? data_lo : data_hi;
  loop->extent = hi - lo;
  loop->solid = false;
  loop->regions = size == 0 ? 0 : regions;
  return loop;
}

DataloopPtr make_resized(DataloopPtr loop, std::int64_t lb,
                         std::int64_t extent) {
  require(loop != nullptr, "resized loop must not be null");
  require(extent >= 0, "resized extent must be >= 0");
  if (lb == loop->lb && extent == loop->extent) return loop;
  auto resized = std::make_shared<Dataloop>(*loop);
  resized->lb = lb;
  resized->extent = extent;
  // A solid run exactly filling the old extent may now leave gaps between
  // instances; solidity of a single instance is unchanged.
  return resized;
}

}  // namespace dtio::dl
