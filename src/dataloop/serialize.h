// Wire (de)serialisation of dataloops: this is what datatype I/O ships to
// the I/O servers instead of offset-length lists. The encoded size is what
// the cost model charges as request payload — the paper's tile reader
// sends ~9 KiB of list per client with list I/O versus a few dozen bytes
// of dataloop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataloop/dataloop.h"

namespace dtio::dl {

/// Append the encoding of `loop` to `out`.
void encode(const Dataloop& loop, std::vector<std::uint8_t>& out);

/// Bytes encode() would append for `loop`.
[[nodiscard]] std::size_t encoded_size(const Dataloop& loop);

/// Rebuild a dataloop from its encoding (the builders re-derive all
/// computed metadata, so a decoded loop is processing-ready).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] DataloopPtr decode(std::span<const std::uint8_t> in);

/// Structural equality (kind, counts, offsets, children, lb/extent).
[[nodiscard]] bool deep_equal(const Dataloop& a, const Dataloop& b) noexcept;

}  // namespace dtio::dl
