#include "hyperslab/hyperslab.h"

#include "dataloop/cursor.h"

#include <stdexcept>

namespace dtio::hyperslab {

Hyperslab::Hyperslab(std::span<const std::int64_t> dims,
                     std::span<const DimSelection> selection)
    : dims_(dims.begin(), dims.end()),
      selection_(selection.begin(), selection.end()) {
  if (dims_.empty() || dims_.size() != selection_.size()) {
    throw std::invalid_argument("hyperslab: dims/selection mismatch");
  }
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const DimSelection& s = selection_[d];
    if (dims_[d] <= 0 || s.start < 0 || s.count <= 0 || s.block <= 0 ||
        s.stride <= 0) {
      throw std::invalid_argument("hyperslab: non-positive geometry");
    }
    if (s.count > 1 && s.stride < s.block) {
      throw std::invalid_argument("hyperslab: blocks overlap (stride < block)");
    }
    if (s.upper() > dims_[d]) {
      throw std::invalid_argument("hyperslab: selection outside dataspace");
    }
  }
}

std::int64_t Hyperslab::num_selected() const noexcept {
  std::int64_t n = 1;
  for (const DimSelection& s : selection_) n *= s.count * s.block;
  return n;
}

bool Hyperslab::contains(std::span<const std::int64_t> coords) const {
  if (coords.size() != dims_.size()) return false;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const DimSelection& s = selection_[d];
    const std::int64_t rel = coords[d] - s.start;
    if (rel < 0) return false;
    const std::int64_t blk = rel / s.stride;
    if (blk >= s.count || rel % s.stride >= s.block) return false;
  }
  return true;
}

dl::DataloopPtr Hyperslab::to_dataloop(std::int64_t el_size) const {
  // Build from the fastest dimension outward. At each level, `loop`
  // describes the selection of the faster dimensions within one "row" and
  // `row_bytes` is the span of that row in the dataspace.
  dl::DataloopPtr loop = dl::make_leaf(el_size);
  std::int64_t dim_bytes = el_size;  // bytes of one element of this level
  std::int64_t start_offset = 0;
  for (std::size_t d = dims_.size(); d-- > 0;) {
    const DimSelection& s = selection_[d];
    start_offset += s.start * dim_bytes;
    // `block` consecutive entries spaced dim_bytes, `count` such blocks
    // spaced stride*dim_bytes. The child must occupy exactly dim_bytes of
    // extent so blocks pack; resize when the inner selection is sparser.
    if (loop->extent != dim_bytes) {
      loop = dl::make_resized(loop, 0, dim_bytes);
    }
    loop = dl::make_vector(s.count, s.block, s.stride * dim_bytes, loop);
    dim_bytes *= dims_[d];
  }
  if (start_offset != 0) {
    const std::int64_t offs[] = {start_offset};
    loop = dl::make_blockindexed(1, 1, offs, loop);
  }
  // The whole dataspace is the extent: instances tile dataspaces.
  return dl::make_resized(loop, 0, dim_bytes);
}

types::Datatype Hyperslab::to_datatype(const types::Datatype& element) const {
  // The same construction through the MPI-like constructors, so the result
  // carries envelope/contents like any other datatype.
  types::Datatype type = element;
  std::int64_t dim_bytes = element.extent();
  std::int64_t start_offset = 0;
  for (std::size_t d = dims_.size(); d-- > 0;) {
    const DimSelection& s = selection_[d];
    start_offset += s.start * dim_bytes;
    if (type.extent() != dim_bytes) {
      type = types::resized(type, 0, dim_bytes);
    }
    type = types::hvector(s.count, s.block, s.stride * dim_bytes, type);
    dim_bytes *= dims_[d];
  }
  if (start_offset != 0) {
    const std::int64_t lens[] = {1};
    const std::int64_t offs[] = {start_offset};
    type = types::hindexed(lens, offs, type);
  }
  return types::resized(type, 0, dim_bytes);
}

Selection::Selection(std::span<const std::int64_t> dims)
    : dims_(dims.begin(), dims.end()) {
  if (dims_.empty()) {
    throw std::invalid_argument("selection: empty dataspace");
  }
}

void Selection::select_or(std::span<const DimSelection> slab) {
  slabs_.emplace_back(dims_, slab);  // validates
}

std::vector<Region> Selection::element_regions() const {
  std::vector<Region> all;
  for (const Hyperslab& slab : slabs_) {
    // Element-granularity regions of this slab (el_size 1).
    auto regions = dl::flatten(slab.to_dataloop(1), 0, 1);
    all.insert(all.end(), regions.begin(), regions.end());
  }
  return region_union(std::move(all));
}

std::int64_t Selection::num_selected() const {
  std::int64_t n = 0;
  for (const Region& r : element_regions()) n += r.length;
  return n;
}

bool Selection::contains(std::span<const std::int64_t> coords) const {
  for (const Hyperslab& slab : slabs_) {
    if (slab.contains(coords)) return true;
  }
  return false;
}

types::Datatype Selection::to_datatype(const types::Datatype& element) const {
  const std::vector<Region> regions = element_regions();
  std::vector<std::int64_t> lens, offs;
  lens.reserve(regions.size());
  offs.reserve(regions.size());
  for (const Region& r : regions) {
    lens.push_back(r.length);
    offs.push_back(r.offset * element.extent());
  }
  auto type = types::hindexed(lens, offs, element);
  std::int64_t total = 1;
  for (const std::int64_t d : dims_) total *= d;
  return types::resized(type, 0, total * element.extent());
}

}  // namespace dtio::hyperslab
