// HDF5-style hyperslab selections as a second front-end to the dataloop
// engine.
//
// The paper (§3) emphasises that datatype I/O is not tied to MPI: "nothing
// precludes our using the same approach to directly describe datatypes
// from other APIs, such as HDF5 hyperslabs." This module demonstrates
// that: an n-dimensional dataspace plus a (start, stride, count, block)
// selection per dimension — HDF5's H5Sselect_hyperslab vocabulary —
// converts straight into a datatype/dataloop that every access method in
// the repository can ship and process.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/region.h"
#include "dataloop/dataloop.h"
#include "types/datatype.h"

namespace dtio::hyperslab {

/// One dimension of a hyperslab selection (HDF5 semantics): `count`
/// blocks of `block` consecutive elements, block origins `stride`
/// elements apart, the first at `start`.
struct DimSelection {
  std::int64_t start = 0;
  std::int64_t stride = 1;
  std::int64_t count = 1;
  std::int64_t block = 1;

  /// Index of one past the last selected element in this dimension.
  [[nodiscard]] std::int64_t upper() const noexcept {
    return start + (count - 1) * stride + block;
  }
};

/// An n-dimensional dataspace (element counts per dimension, C order:
/// last dimension fastest) with a hyperslab selection.
class Hyperslab {
 public:
  /// Throws std::invalid_argument when the selection is malformed or
  /// reaches outside the dataspace (including overlapping blocks, which
  /// HDF5 also rejects: stride >= block).
  Hyperslab(std::span<const std::int64_t> dims,
            std::span<const DimSelection> selection);

  [[nodiscard]] std::size_t ndims() const noexcept { return dims_.size(); }
  [[nodiscard]] const std::vector<std::int64_t>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] const std::vector<DimSelection>& selection() const noexcept {
    return selection_;
  }

  /// Number of selected elements.
  [[nodiscard]] std::int64_t num_selected() const noexcept;

  /// Whether the element at `coords` is selected.
  [[nodiscard]] bool contains(std::span<const std::int64_t> coords) const;

  /// The selection as a datatype over `element`, spanning the whole
  /// dataspace as its extent (so consecutive instances tile dataspaces,
  /// exactly like subarray types).
  [[nodiscard]] types::Datatype to_datatype(
      const types::Datatype& element) const;

  /// The selection directly as a dataloop over `el_size`-byte elements —
  /// what an HDF5-layer implementation of datatype I/O would ship without
  /// going through MPI datatypes at all.
  [[nodiscard]] dl::DataloopPtr to_dataloop(std::int64_t el_size) const;

 private:
  std::vector<std::int64_t> dims_;
  std::vector<DimSelection> selection_;
};

/// A union of hyperslab selections over one dataspace — HDF5's
/// H5Sselect_hyperslab with H5S_SELECT_OR. Overlapping slabs are
/// deduplicated; the composite converts to a datatype through the merged
/// region list (an hindexed type), since unions generally have no concise
/// regular structure left to exploit.
class Selection {
 public:
  explicit Selection(std::span<const std::int64_t> dims);

  /// Add a slab to the union; throws like the Hyperslab constructor.
  void select_or(std::span<const DimSelection> slab);

  [[nodiscard]] std::size_t num_slabs() const noexcept {
    return slabs_.size();
  }
  [[nodiscard]] std::int64_t num_selected() const;
  [[nodiscard]] bool contains(std::span<const std::int64_t> coords) const;

  /// Merged element regions (element indices, sorted disjoint).
  [[nodiscard]] std::vector<Region> element_regions() const;

  /// The union as a datatype over `element` (dataspace-extent semantics,
  /// like Hyperslab::to_datatype).
  [[nodiscard]] types::Datatype to_datatype(
      const types::Datatype& element) const;

 private:
  std::vector<std::int64_t> dims_;
  std::vector<Hyperslab> slabs_;
};

}  // namespace dtio::hyperslab
