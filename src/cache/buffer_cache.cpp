#include "cache/buffer_cache.h"

#include <algorithm>
#include <cstring>

namespace dtio::cache {

namespace {

/// Append `seg` to `segs`, merging with the previous segment when the two
/// are physically contiguous on the same handle (one disk op covers both).
void append_coalesced(std::vector<IoSeg>& segs, const IoSeg& seg) {
  if (!segs.empty()) {
    IoSeg& prev = segs.back();
    if (prev.handle == seg.handle && prev.offset + prev.bytes == seg.offset) {
      prev.bytes += seg.bytes;
      return;
    }
  }
  segs.push_back(seg);
}

}  // namespace

BlockCache::BlockCache(const CacheConfig& config, ByteStore& store)
    : config_(config), store_(&store) {
  if (config_.block_bytes <= 0) config_.block_bytes = 64 * 1024;
  // ByteRange tracks in-block offsets in 32 bits; cap the block size so
  // in_block + run can never overflow.
  config_.block_bytes =
      std::min<std::int64_t>(config_.block_bytes, kMaxBlockBytes);
  capacity_blocks_ = static_cast<std::size_t>(
      std::max<std::int64_t>(1, config_.capacity_bytes / config_.block_bytes));
  protected_cap_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(capacity_blocks_) *
                                  config_.protected_fraction));
}

BlockCache::Block& BlockCache::touch(const BlockKey& key, AccessPlan& plan) {
  const auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    ++stats_.hits;
    ++plan.hits;
    Block& block = it->second;
    if (block.in_protected) {
      protected_.splice(protected_.begin(), protected_, block.lru_it);
    } else {
      // Re-reference promotes probation -> protected (SLRU): only blocks
      // touched at least twice can occupy the protected segment.
      protected_.splice(protected_.begin(), probation_, block.lru_it);
      block.in_protected = true;
      if (protected_.size() > protected_cap_) {
        const BlockKey demoted = protected_.back();
        Block& d = blocks_.at(demoted);
        probation_.splice(probation_.begin(), protected_,
                          std::prev(protected_.end()));
        d.in_protected = false;
      }
    }
    return block;
  }
  ++stats_.misses;
  ++plan.misses;
  // Evict before inserting so the victim can never be the key being added:
  // with capacity 1 and the lone resident block in the protected segment,
  // evicting after the insert would pick the new probation MRU itself.
  while (blocks_.size() >= capacity_blocks_) evict_one(plan);
  probation_.push_front(key);
  Block& block = blocks_[key];
  block.lru_it = probation_.begin();
  return block;
}

void BlockCache::evict_one(AccessPlan& plan) {
  // Probation LRU first; the protected segment only gives blocks up when
  // probation is empty.
  const bool from_probation = !probation_.empty();
  std::list<BlockKey>& seg = from_probation ? probation_ : protected_;
  const BlockKey victim = seg.back();
  Block& block = blocks_.at(victim);
  if (block.dirty) flush_block(victim, block, &plan.async_writes, &plan);
  seg.pop_back();
  blocks_.erase(victim);
  ++stats_.evictions;
  ++plan.evictions;
}

void BlockCache::flush_block(const BlockKey& key, Block& block,
                             std::vector<IoSeg>* out_segs, AccessPlan* plan) {
  const std::int64_t base = key.index * config_.block_bytes;
  std::int64_t flushed = 0;
  for (const ByteRange& r : block.dirty_ranges) {
    flushed += r.second - r.first;
    if (!block.staged.empty()) {
      store_->write_at(key.handle, base + r.first,
                       std::span<const std::uint8_t>(
                           block.staged.data() + r.first,
                           static_cast<std::size_t>(r.second - r.first)));
    }
  }
  if (out_segs != nullptr && !block.dirty_ranges.empty()) {
    // One disk op covering the dirty hull of the block.
    const std::int64_t lo = block.dirty_ranges.front().first;
    const std::int64_t hi = block.dirty_ranges.back().second;
    append_coalesced(*out_segs, IoSeg{key.handle, base + lo, hi - lo});
  }
  stats_.dirty_flushed_bytes += static_cast<std::uint64_t>(flushed);
  if (plan != nullptr) {
    plan->flushed_bytes += static_cast<std::uint64_t>(flushed);
  }
  dirty_bytes_ -= flushed;
  block.dirty = false;
  dirty_order_.erase(block.dirty_it);
  block.dirty_ranges.clear();
  block.staged.clear();
  block.staged.shrink_to_fit();
}

void BlockCache::mark_dirty(const BlockKey& key, Block& block,
                            std::int32_t begin, std::int32_t end) {
  if (!block.dirty) {
    block.dirty = true;
    dirty_order_.push_back(key);
    block.dirty_it = std::prev(dirty_order_.end());
  }
  // Insert-merge into the sorted disjoint range list.
  std::vector<ByteRange>& ranges = block.dirty_ranges;
  ByteRange merged{begin, end};
  std::vector<ByteRange> out;
  out.reserve(ranges.size() + 1);
  std::int64_t added = end - begin;
  for (const ByteRange& r : ranges) {
    if (r.second < merged.first || merged.second < r.first) {
      out.push_back(r);
    } else {  // overlap or touch: absorb
      added -= std::max<std::int64_t>(
          0, std::min(r.second, merged.second) -
                 std::max(r.first, merged.first));
      merged.first = std::min(merged.first, r.first);
      merged.second = std::max(merged.second, r.second);
    }
  }
  out.push_back(merged);
  std::sort(out.begin(), out.end());
  ranges = std::move(out);
  dirty_bytes_ += added;
}

void BlockCache::read(std::uint64_t handle, std::int64_t offset,
                      std::int64_t length, std::span<std::uint8_t> out,
                      AccessPlan& plan) {
  if (length <= 0) return;
  const std::int64_t bb = config_.block_bytes;
  std::int64_t done = 0;
  while (done < length) {
    const std::int64_t at = offset + done;
    const BlockKey key{handle, at / bb};
    const std::int64_t in_block = at % bb;
    const std::int64_t run = std::min(length - done, bb - in_block);
    const bool was_resident = blocks_.contains(key);
    Block& block = touch(key, plan);
    if (!was_resident) {
      // Miss fill: read the whole block from storage, coalesced with an
      // adjacent preceding miss into one disk op.
      append_coalesced(plan.sync_reads, IoSeg{handle, key.index * bb, bb});
    }
    if (!out.empty()) {
      const std::span<std::uint8_t> chunk =
          out.subspan(static_cast<std::size_t>(done),
                      static_cast<std::size_t>(run));
      store_->read_at(handle, at, chunk);
      // Read-your-writes: staged write-back bytes overlay storage.
      if (!block.staged.empty()) {
        for (const ByteRange& r : block.dirty_ranges) {
          const std::int64_t lo = std::max<std::int64_t>(r.first, in_block);
          const std::int64_t hi =
              std::min<std::int64_t>(r.second, in_block + run);
          if (lo < hi) {
            std::memcpy(chunk.data() + (lo - in_block),
                        block.staged.data() + lo,
                        static_cast<std::size_t>(hi - lo));
          }
        }
      }
    }
    done += run;
  }
  detect_and_prefetch(handle, offset / bb, (offset + length - 1) / bb, plan);
}

void BlockCache::write(std::uint64_t handle, std::int64_t offset,
                       std::int64_t length,
                       std::span<const std::uint8_t> data, AccessPlan& plan) {
  if (length <= 0) return;
  const std::int64_t bb = config_.block_bytes;
  std::int64_t done = 0;
  while (done < length) {
    const std::int64_t at = offset + done;
    const BlockKey key{handle, at / bb};
    const std::int64_t in_block = at % bb;
    const std::int64_t run = std::min(length - done, bb - in_block);
    Block& block = touch(key, plan);
    if (config_.write_through) {
      if (!data.empty()) {
        store_->write_at(handle, at,
                         data.subspan(static_cast<std::size_t>(done),
                                      static_cast<std::size_t>(run)));
      } else {
        store_->note_size(handle, at, run);
      }
      append_coalesced(plan.sync_writes, IoSeg{handle, at, run});
    } else {
      mark_dirty(key, block, static_cast<std::int32_t>(in_block),
                 static_cast<std::int32_t>(in_block + run));
      if (!data.empty()) {
        if (block.staged.empty()) {
          block.staged.assign(static_cast<std::size_t>(bb), 0);
        }
        std::memcpy(block.staged.data() + in_block, data.data() + done,
                    static_cast<std::size_t>(run));
      }
      // Size is metadata: it advances now even though the bytes are only
      // staged (and may be lost in a crash).
      store_->note_size(handle, at, run);
    }
    done += run;
  }
}

void BlockCache::detect_and_prefetch(std::uint64_t handle,
                                     std::int64_t first_block,
                                     std::int64_t last_block,
                                     AccessPlan& plan) {
  if (config_.readahead_window <= 0) return;
  // Readahead that would thrash most of the cache is worse than misses.
  if (static_cast<std::size_t>(config_.readahead_window) >
      capacity_blocks_ / 2) {
    return;
  }
  Stream& stream = streams_[handle];
  const std::int64_t len = last_block - first_block + 1;
  if (stream.prev_start >= 0) {
    const std::int64_t stride = first_block - stream.prev_start;
    if (stride == 0) {
      // Still inside the previous blocks (many small regions per block):
      // neither a new stride sample nor a reset.
    } else if (stride > 0 && stride == stream.stride) {
      ++stream.run;
    } else if (stride > 0) {
      stream.stride = stride;
      stream.run = 1;
    } else {
      // Backward seek: a new scan is starting. Clear the prefetch frontier
      // too, or a re-scan of blocks covered (and since evicted) by an
      // earlier forward pass would get zero readahead.
      stream.stride = 0;
      stream.run = 0;
      stream.frontier = -1;
    }
  }
  stream.prev_start = first_block;
  stream.prev_len = len;
  if (stream.run < config_.readahead_min_run || stream.stride <= 0) return;

  // Prefetch the access shape projected forward along the stride, past
  // both the current access and everything already prefetched — but never
  // past EOF (there is nothing on disk to read there).
  const std::int64_t size = store_->size_of(handle);
  const std::int64_t last_file_block =
      size <= 0 ? -1 : (size - 1) / config_.block_bytes;
  std::vector<std::int64_t> targets;
  std::int64_t issued = 0;
  for (std::int64_t k = 1;
       issued < config_.readahead_window &&
       k <= config_.readahead_window * std::max<std::int64_t>(1, stream.stride);
       ++k) {
    const std::int64_t start = first_block + k * stream.stride;
    for (std::int64_t j = 0;
         j < len && issued < config_.readahead_window; ++j) {
      const std::int64_t b = start + j;
      if (b > last_file_block) break;
      if (b <= last_block || b <= stream.frontier) continue;
      if (blocks_.contains(BlockKey{handle, b})) continue;
      targets.push_back(b);
      ++issued;
    }
  }
  if (targets.empty()) return;
  std::sort(targets.begin(), targets.end());
  for (const std::int64_t b : targets) {
    const BlockKey key{handle, b};
    // Prefetched blocks enter probation resident-clean; the hit/miss
    // ledger counts only demand accesses, so insert directly (evicting
    // first so the victim can never be the block just prefetched).
    while (blocks_.size() >= capacity_blocks_) evict_one(plan);
    probation_.push_front(key);
    Block& block = blocks_[key];
    block.lru_it = probation_.begin();
    append_coalesced(plan.async_reads,
                     IoSeg{handle, b * config_.block_bytes,
                           config_.block_bytes});
    stream.frontier = std::max(stream.frontier, b);
    ++stats_.readahead_issued;
    ++plan.readahead_blocks;
  }
}

void BlockCache::maybe_background_flush(AccessPlan& plan) {
  if (config_.write_through) return;
  const double mark =
      config_.dirty_watermark * static_cast<double>(config_.capacity_bytes);
  if (static_cast<double>(dirty_bytes_) <= mark) return;
  const auto target = static_cast<std::int64_t>(mark / 2);
  std::vector<BlockKey> victims;
  std::int64_t reclaimed = 0;
  for (const BlockKey& key : dirty_order_) {
    if (dirty_bytes_ - reclaimed <= target) break;
    victims.push_back(key);
    for (const ByteRange& r : blocks_.at(key).dirty_ranges) {
      reclaimed += r.second - r.first;
    }
  }
  flush_keys(std::move(victims), &plan);
}

void BlockCache::flush_all(AccessPlan* plan) {
  flush_keys({dirty_order_.begin(), dirty_order_.end()}, plan);
}

void BlockCache::flush_keys(std::vector<BlockKey> keys, AccessPlan* plan) {
  // Coalesce: adjacent dirty blocks flush as one disk op regardless of the
  // order they were dirtied in.
  std::sort(keys.begin(), keys.end(),
            [](const BlockKey& a, const BlockKey& b) {
              return a.handle != b.handle ? a.handle < b.handle
                                          : a.index < b.index;
            });
  std::vector<IoSeg> segs;
  for (const BlockKey& key : keys) {
    flush_block(key, blocks_.at(key), &segs, plan);
  }
  if (plan != nullptr) {
    for (const IoSeg& seg : segs) plan->async_writes.push_back(seg);
  }
}

std::uint64_t BlockCache::drop_all(std::vector<IoSeg>* lost_extents) {
  const auto lost = static_cast<std::uint64_t>(dirty_bytes_);
  stats_.dirty_lost_bytes += lost;
  if (lost_extents != nullptr) {
    for (const BlockKey& key : dirty_order_) {
      const Block& block = blocks_.at(key);
      for (const ByteRange& r : block.dirty_ranges) {
        lost_extents->push_back(
            IoSeg{key.handle, key.index * config_.block_bytes + r.first,
                  static_cast<std::int64_t>(r.second) - r.first});
      }
    }
  }
  blocks_.clear();
  probation_.clear();
  protected_.clear();
  dirty_order_.clear();
  dirty_bytes_ = 0;
  streams_.clear();
  return lost;
}

}  // namespace dtio::cache
